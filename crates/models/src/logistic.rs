//! Bayesian logistic regression with synthetic data (paper §4.1's
//! throughput experiment: 100 regressors, 10,000 data points).

use autobatch_tensor::{CounterRng, Result, Tensor, TensorError};

use crate::Model;

/// Bayesian logistic regression: `y_i ~ Bernoulli(σ(x_i · β))` with a
/// standard normal prior on `β`.
///
/// The log-posterior (up to a constant) is
/// `Σ_i [ y_i (x_i·β) − softplus(x_i·β) ] − ½‖β‖²`, with gradient
/// `Xᵀ(y − σ(Xβ)) − β`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    x: Tensor,
    y: Tensor,
    n: usize,
    dim: usize,
}

impl LogisticRegression {
    /// Build from a design matrix `x` of shape `[n, dim]` and labels `y`
    /// of shape `[n]` (values 0.0/1.0).
    ///
    /// # Errors
    ///
    /// Returns an error if shapes disagree.
    pub fn new(x: Tensor, y: Tensor) -> Result<LogisticRegression> {
        if x.rank() != 2 || y.rank() != 1 || x.shape()[0] != y.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                lhs: x.shape().to_vec(),
                rhs: y.shape().to_vec(),
                op: "LogisticRegression::new",
            });
        }
        let n = x.shape()[0];
        let dim = x.shape()[1];
        Ok(LogisticRegression { x, y, n, dim })
    }

    /// Generate a synthetic problem: `X ~ N(0, 1)`, true weights
    /// `β* ~ N(0, 1)`, labels from the model.
    pub fn synthetic(n: usize, dim: usize, seed: u64) -> LogisticRegression {
        let rng = CounterRng::new(seed);
        let mut xv = Vec::with_capacity(n * dim);
        for i in 0..n * dim {
            xv.push(rng.normal(0, i as i64));
        }
        let mut beta = Vec::with_capacity(dim);
        for j in 0..dim {
            beta.push(rng.normal(1, j as i64));
        }
        let mut yv = Vec::with_capacity(n);
        for i in 0..n {
            let logit: f64 = (0..dim).map(|j| xv[i * dim + j] * beta[j]).sum();
            let p = 1.0 / (1.0 + (-logit).exp());
            yv.push(if rng.uniform(2, i as i64) < p {
                1.0
            } else {
                0.0
            });
        }
        LogisticRegression {
            x: Tensor::from_f64(&xv, &[n, dim]).expect("shape by construction"),
            y: Tensor::from_f64(&yv, &[n]).expect("shape by construction"),
            n,
            dim,
        }
    }

    /// The paper's §4.1 configuration: 10,000 points, 100 regressors.
    pub fn paper(seed: u64) -> LogisticRegression {
        LogisticRegression::synthetic(10_000, 100, seed)
    }

    /// Number of data points.
    pub fn n_data(&self) -> usize {
        self.n
    }
}

impl Model for LogisticRegression {
    fn name(&self) -> &'static str {
        "logistic-regression"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn logp(&self, q: &Tensor) -> Result<Tensor> {
        // s = Xβ per member: [Z, N].
        let s = self.x.matvec_batched(q)?;
        // y·s − softplus(s), summed over data.
        let ys = s.mul(&self.y)?;
        let fit = ys.sub(&s.softplus()?)?.sum_last_axis()?;
        // − ½‖β‖².
        let prior = q.dot_last_axis(q)?.mul(&Tensor::scalar(-0.5))?;
        fit.add(&prior)
    }

    fn grad(&self, q: &Tensor) -> Result<Tensor> {
        let s = self.x.matvec_batched(q)?;
        let resid = self.y.sub(&s.sigmoid()?)?; // broadcasts y over [Z, N]
        let fit = self.x.matvec_t_batched(&resid)?;
        fit.sub(q)
    }

    fn logp_flops(&self) -> f64 {
        // matvec (2Nd) + softplus et al. (~12N) + prior (2d).
        2.0 * (self.n * self.dim) as f64 + 12.0 * self.n as f64 + 2.0 * self.dim as f64
    }

    fn grad_flops(&self) -> f64 {
        // two matvecs (4Nd) + sigmoid/residual (~12N).
        4.0 * (self.n * self.dim) as f64 + 12.0 * self.n as f64
    }

    fn parallel_width(&self) -> usize {
        // The likelihood terms are independent across data points.
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_autodiff::finite_difference;

    fn tiny() -> LogisticRegression {
        LogisticRegression::synthetic(40, 5, 7)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = tiny();
        let q0 = Tensor::from_f64(&[0.1, -0.4, 0.2, 0.0, 0.5], &[5]).unwrap();
        let qb = q0.reshape(&[1, 5]).unwrap();
        let g = m.grad(&qb).unwrap();
        let fd = finite_difference(
            |x| {
                let xb = x.reshape(&[1, 5]).unwrap();
                m.logp(&xb).unwrap().as_f64().unwrap()[0]
            },
            &q0,
            1e-6,
        );
        for (a, b) in g.as_f64().unwrap().iter().zip(fd.as_f64().unwrap()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_matches_autodiff_tape() {
        // Cross-check the hand-derived gradient against the reverse-mode
        // tape on the exact same expression.
        use autobatch_autodiff::Tape;
        let m = tiny();
        let q0 = Tensor::from_f64(&[0.3, 0.1, -0.2, 0.4, -0.1], &[5]).unwrap();
        let mut t = Tape::new();
        let xm = t.constant_matrix(m.x.clone());
        let beta = t.input(q0.clone());
        let s = t.matvec(xm, beta).unwrap();
        let yv = t.input(m.y.clone());
        // NOTE: y is an input here but we only read β's gradient.
        let ys = t.mul(s, yv).unwrap();
        let sp = t.softplus(s).unwrap();
        let fit_terms = t.sub(ys, sp).unwrap();
        let fit = t.sum(fit_terms).unwrap();
        let qq = t.dot(beta, beta).unwrap();
        let prior = t.scale(qq, -0.5).unwrap();
        let total = t.add(fit, prior).unwrap();
        let tape_grad = t.backward(total).unwrap()[&beta].clone();
        let hand = m.grad(&q0.reshape(&[1, 5]).unwrap()).unwrap();
        for (a, b) in hand
            .as_f64()
            .unwrap()
            .iter()
            .zip(tape_grad.as_f64().unwrap())
        {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn synthetic_labels_are_binary_and_correlated_with_logits() {
        let m = LogisticRegression::synthetic(500, 4, 3);
        let y = m.y.as_f64().unwrap();
        assert!(y.iter().all(|&v| v == 0.0 || v == 1.0));
        let ones = y.iter().filter(|&&v| v == 1.0).count();
        assert!(ones > 50 && ones < 450, "labels not degenerate: {ones}");
    }

    #[test]
    fn batch_rows_independent() {
        let m = tiny();
        let a = Tensor::from_f64(&[0.1, 0.2, 0.3, 0.4, 0.5], &[1, 5]).unwrap();
        let b = Tensor::full(&[1, 5], -1.0);
        let both = Tensor::concat_rows(&[a.clone(), b]).unwrap();
        let single = m.logp(&a).unwrap();
        let batch = m.logp(&both).unwrap();
        assert!((batch.as_f64().unwrap()[0] - single.as_f64().unwrap()[0]).abs() < 1e-12);
    }

    #[test]
    fn paper_configuration_shapes() {
        let m = LogisticRegression::synthetic(100, 10, 1);
        assert_eq!(m.dim(), 10);
        assert_eq!(m.n_data(), 100);
        assert!(m.grad_flops() > m.logp_flops());
    }

    #[test]
    fn bad_shapes_rejected() {
        let x = Tensor::zeros(autobatch_tensor::DType::F64, &[3, 2]);
        let y = Tensor::zeros(autobatch_tensor::DType::F64, &[4]);
        assert!(LogisticRegression::new(x, y).is_err());
    }
}
