//! Correlated Gaussian target (paper §4.2's utilization experiment).
//!
//! The covariance is the AR(1) family `Σ_ij = ρ^|i-j|`, whose precision
//! matrix is tridiagonal in closed form — so the exact log-density and
//! gradient cost `O(d)` per chain, keeping the Figure 6 experiment about
//! *batching behaviour*, not linear algebra.

use autobatch_tensor::{Result, Tensor, TensorError};

use crate::Model;

/// A `dim`-dimensional Gaussian with AR(1) correlation `rho`.
#[derive(Debug, Clone)]
pub struct CorrelatedGaussian {
    dim: usize,
    rho: f64,
    /// Precision-matrix coefficients: interior diagonal, endpoint
    /// diagonal, off-diagonal.
    diag_mid: f64,
    diag_end: f64,
    off: f64,
}

impl CorrelatedGaussian {
    /// Create the target. `rho` must lie strictly inside `(-1, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `rho` is outside `(-1, 1)`.
    pub fn new(dim: usize, rho: f64) -> CorrelatedGaussian {
        assert!(dim > 0, "dim must be positive");
        assert!(rho.abs() < 1.0, "rho must be in (-1, 1)");
        let s = 1.0 / (1.0 - rho * rho);
        CorrelatedGaussian {
            dim,
            rho,
            diag_mid: (1.0 + rho * rho) * s,
            diag_end: s,
            off: -rho * s,
        }
    }

    /// The paper's §4.2 configuration: 100 dimensions, strong correlation.
    pub fn paper() -> CorrelatedGaussian {
        CorrelatedGaussian::new(100, 0.9)
    }

    /// The correlation parameter.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Precision–vector product `P·q` per batch member, `O(d)`.
    fn precision_apply(&self, q: &Tensor) -> Result<Tensor> {
        let d = self.dim;
        let v = q.as_f64()?;
        if q.rank() != 2 || q.shape()[1] != d {
            return Err(TensorError::ShapeMismatch {
                lhs: q.shape().to_vec(),
                rhs: vec![0, d],
                op: "precision_apply",
            });
        }
        let z = q.shape()[0];
        let mut out = vec![0.0; z * d];
        for b in 0..z {
            let row = &v[b * d..(b + 1) * d];
            let o = &mut out[b * d..(b + 1) * d];
            for i in 0..d {
                let diag = if i == 0 || i == d - 1 {
                    self.diag_end
                } else {
                    self.diag_mid
                };
                let mut acc = diag * row[i];
                if i > 0 {
                    acc += self.off * row[i - 1];
                }
                if i + 1 < d {
                    acc += self.off * row[i + 1];
                }
                o[i] = acc;
            }
        }
        Tensor::from_f64(&out, q.shape())
    }
}

impl Model for CorrelatedGaussian {
    fn name(&self) -> &'static str {
        "correlated-gaussian"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn logp(&self, q: &Tensor) -> Result<Tensor> {
        // -0.5 qᵀPq (normalizing constant omitted — MCMC only needs the
        // density up to a constant).
        let pq = self.precision_apply(q)?;
        q.mul(&pq)?.sum_last_axis()?.mul(&Tensor::scalar(-0.5))
    }

    fn grad(&self, q: &Tensor) -> Result<Tensor> {
        self.precision_apply(q)?.neg()
    }

    fn logp_flops(&self) -> f64 {
        7.0 * self.dim as f64
    }

    fn grad_flops(&self) -> f64 {
        6.0 * self.dim as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_autodiff::finite_difference;

    #[test]
    fn gradient_matches_finite_differences() {
        let m = CorrelatedGaussian::new(6, 0.7);
        let q = Tensor::from_f64(&[0.3, -1.2, 0.8, 2.0, -0.5, 0.1], &[1, 6]).unwrap();
        let g = m.grad(&q).unwrap();
        let qv = q.reshape(&[6]).unwrap();
        let fd = finite_difference(
            |x| {
                let xb = x.reshape(&[1, 6]).unwrap();
                m.logp(&xb).unwrap().as_f64().unwrap()[0]
            },
            &qv,
            1e-6,
        );
        for (a, b) in g.as_f64().unwrap().iter().zip(fd.as_f64().unwrap()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn precision_matches_dense_inverse_on_small_case() {
        // For d = 2: Σ = [[1, ρ], [ρ, 1]]; P = Σ⁻¹ = 1/(1-ρ²)[[1, -ρ], [-ρ, 1]].
        let m = CorrelatedGaussian::new(2, 0.5);
        let q = Tensor::from_f64(&[1.0, 2.0], &[1, 2]).unwrap();
        let pq = m.precision_apply(&q).unwrap();
        let s = 1.0 / (1.0 - 0.25);
        let expect = [s * (1.0 - 0.5 * 2.0), s * (-0.5 + 2.0)];
        for (a, b) in pq.as_f64().unwrap().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_members_are_independent() {
        let m = CorrelatedGaussian::new(4, 0.9);
        let q1 = Tensor::from_f64(&[1.0, 0.0, -1.0, 0.5], &[1, 4]).unwrap();
        let q2 = Tensor::from_f64(&[9.0, 9.0, 9.0, 9.0], &[1, 4]).unwrap();
        let both = Tensor::concat_rows(&[q1.clone(), q2]).unwrap();
        let single = m.grad(&q1).unwrap();
        let batch = m.grad(&both).unwrap();
        assert_eq!(&batch.as_f64().unwrap()[..4], single.as_f64().unwrap());
    }

    #[test]
    fn logp_is_maximal_at_origin() {
        let m = CorrelatedGaussian::paper();
        let zero = Tensor::zeros(autobatch_tensor::DType::F64, &[1, 100]);
        let off = Tensor::full(&[1, 100], 0.3);
        assert!(
            m.logp(&zero).unwrap().as_f64().unwrap()[0]
                > m.logp(&off).unwrap().as_f64().unwrap()[0]
        );
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn invalid_rho_panics() {
        CorrelatedGaussian::new(3, 1.5);
    }
}
