//! # autobatch-models
//!
//! The target log-densities of the paper's evaluation (§4), with batched
//! values and hand-derived batched gradients:
//!
//! - [`LogisticRegression`] — Bayesian logistic regression on synthetic
//!   data (§4.1: 100 regressors, 10,000 points);
//! - [`CorrelatedGaussian`] — a 100-dimensional correlated Gaussian
//!   (§4.2's utilization experiment), with a closed-form tridiagonal
//!   precision;
//! - [`NealsFunnel`] and [`StdNormal`] — extra targets for the examples.
//!
//! Every gradient is cross-checked in tests against both
//! `autobatch-autodiff`'s reverse-mode tape and central finite
//! differences. [`model_registry`] packages a model as the `grad`/`logp`
//! external kernels autobatched programs call.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use autobatch_tensor::{Result, Tensor};

mod funnel;
mod gaussian;
mod kernels;
mod logistic;
mod pricing;
mod schools;

pub use funnel::{NealsFunnel, StdNormal};
pub use gaussian::CorrelatedGaussian;
pub use kernels::{model_registry, GradKernel, LogpKernel};
pub use logistic::LogisticRegression;
pub use pricing::PricedAs;
pub use schools::EightSchools;

/// A differentiable target density, batched over axis 0.
///
/// Implementations must treat batch members independently — the property
/// every autobatching correctness argument rests on.
pub trait Model: Send + Sync + fmt::Debug {
    /// Short display name.
    fn name(&self) -> &str;
    /// Dimensionality of the parameter vector.
    fn dim(&self) -> usize;
    /// Batched log-density (up to an additive constant): `[Z, d] → [Z]`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error on shape violations.
    fn logp(&self, q: &Tensor) -> Result<Tensor>;
    /// Batched gradient of the log-density: `[Z, d] → [Z, d]`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error on shape violations.
    fn grad(&self, q: &Tensor) -> Result<Tensor>;
    /// Per-member flop count of `logp` (for the cost model).
    fn logp_flops(&self) -> f64;
    /// Per-member flop count of `grad` (for the cost model).
    fn grad_flops(&self) -> f64;
    /// Independent elements one member's kernels can process in parallel
    /// (defaults to the dimensionality; data-parallel likelihoods
    /// override with their data count).
    fn parallel_width(&self) -> usize {
        self.dim()
    }
}
