//! Deterministic, seed-replayable fault injection.
//!
//! The serving stack's robustness story (supervision, respawn, retry)
//! is only testable if failures are *reproducible*: a chaos test that
//! cannot replay the exact fault schedule that broke it is a flake
//! generator, not a test. This crate provides [`FaultPlan`], a tiny
//! `Copy` struct of per-site failure rates plus a seed, whose every
//! injection decision is a **pure function** of
//! `(seed, epoch, site, counter)` — no global state, no wall clock, no
//! thread-local RNG. Two runs with the same plan and the same counter
//! streams inject byte-identical fault schedules.
//!
//! # Design
//!
//! - Each injection site in the stack ([`FaultPoint`]) keeps its own
//!   monotonic counter (e.g. "supersteps executed", "frames read on
//!   this connection") and asks [`FaultPlan::fires`] whether the fault
//!   fires *at this counter value*. The decision hashes the counter
//!   rather than consuming shared RNG state, so adding a new site (or
//!   reordering calls) never perturbs the schedule of existing sites —
//!   the same property the paper's counter-based RNG gives program
//!   results under admission reordering.
//! - Rates are expressed in parts per 65 536 ([`FaultPlan::ALWAYS`]).
//!   A rate of `0` never fires and costs one predictable branch, so a
//!   default (all-zero) plan is safe to thread through hot paths.
//! - The `epoch` field decorrelates streams after recovery: a shard
//!   respawned by the supervisor gets the same seed but a fresh epoch
//!   ([`FaultPlan::with_epoch`]), so a deterministic plan does not
//!   re-kill the replacement at the exact same superstep forever.
//!
//! ```
//! use autobatch_chaos::{FaultPlan, FaultPoint};
//!
//! let plan = FaultPlan {
//!     seed: 7,
//!     exec_error: FaultPlan::ALWAYS / 8, // ~1/8 of supersteps fail
//!     ..FaultPlan::none()
//! };
//! let a: Vec<bool> = (0..64).map(|c| plan.fires(FaultPoint::ExecStep, c)).collect();
//! let b: Vec<bool> = (0..64).map(|c| plan.fires(FaultPoint::ExecStep, c)).collect();
//! assert_eq!(a, b); // replayable
//! assert!(a.iter().any(|&f| f));
//! assert!(!FaultPlan::none().fires(FaultPoint::ExecStep, 3)); // inert by default
//! ```

#![warn(missing_docs)]

/// Where in the stack a fault can be injected.
///
/// Each variant corresponds to one instrumented site; the site supplies
/// its own monotonic counter when calling [`FaultPlan::fires`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// A tensor-op execution error at the top of a VM superstep
    /// (before the block runs, so machine state stays consistent).
    ExecStep,
    /// A failure while submitting a request to a batch server.
    Admission,
    /// A shard worker thread panics outright.
    WorkerPanic,
    /// A shard worker stalls for an artificial delay before working.
    WorkerSlow,
    /// A wire frame has one byte flipped before decoding.
    WireCorrupt,
    /// A connection is cut mid-frame (truncated stream).
    WireTruncate,
    /// A lane becomes a runaway: instead of finishing, its pc is reset
    /// to the program entry at every exit, so the lane never terminates.
    /// Keyed by the lane's RNG member key (not a per-machine counter),
    /// so the same request runs away on every shard, under every
    /// placement, after every migration — respawn and retry cannot
    /// "heal" it, exactly like a genuinely non-terminating program.
    Runaway,
}

impl FaultPoint {
    /// Stable per-site tag mixed into the hash. Never reuse a value.
    fn tag(self) -> u64 {
        match self {
            FaultPoint::ExecStep => 0x01,
            FaultPoint::Admission => 0x02,
            FaultPoint::WorkerPanic => 0x03,
            FaultPoint::WorkerSlow => 0x04,
            FaultPoint::WireCorrupt => 0x05,
            FaultPoint::WireTruncate => 0x06,
            FaultPoint::Runaway => 0x07,
        }
    }

    /// Human-readable site name, used in injected error payloads.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::ExecStep => "exec-step",
            FaultPoint::Admission => "admission",
            FaultPoint::WorkerPanic => "worker-panic",
            FaultPoint::WorkerSlow => "worker-slow",
            FaultPoint::WireCorrupt => "wire-corrupt",
            FaultPoint::WireTruncate => "wire-truncate",
            FaultPoint::Runaway => "runaway",
        }
    }
}

/// A seeded, deterministic fault schedule.
///
/// All decisions are pure functions of `(seed, epoch, site, counter)`;
/// see the [crate docs](crate) for the full contract. The default plan
/// is inert (all rates zero), so production paths can thread a
/// `FaultPlan` unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed; one seed replays one complete fault schedule.
    pub seed: u64,
    /// Stream epoch. Respawned components bump this via
    /// [`with_epoch`](FaultPlan::with_epoch) so their fault stream
    /// decorrelates from the component they replaced.
    pub epoch: u64,
    /// Rate of [`FaultPoint::ExecStep`] faults, in parts per 65 536.
    pub exec_error: u32,
    /// Rate of [`FaultPoint::Admission`] faults.
    pub admit_error: u32,
    /// Rate of [`FaultPoint::WorkerPanic`] faults.
    pub worker_panic: u32,
    /// Rate of [`FaultPoint::WorkerSlow`] stalls.
    pub worker_slow: u32,
    /// Rate of [`FaultPoint::WireCorrupt`] byte flips.
    pub wire_corrupt: u32,
    /// Rate of [`FaultPoint::WireTruncate`] connection cuts.
    pub wire_truncate: u32,
    /// Rate of [`FaultPoint::Runaway`] non-terminating lanes. The
    /// counter for this site is the lane's RNG member key, so whether a
    /// given request runs away is a property of the request, stable
    /// across shards, retries, and migrations.
    pub runaway: u32,
    /// Ceiling on [`delay_micros`](FaultPlan::delay_micros) stalls, in
    /// microseconds. Defaults to 4000 (the natural 1–4 ms range), so
    /// plans that never touch the field behave as before; chaos sweeps
    /// lower it so an unlucky seed cannot stall a CI job past its
    /// `timeout-minutes`.
    pub max_slow_micros: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// Rate denominator: a rate of `ALWAYS` (or more) always fires.
    pub const ALWAYS: u32 = 1 << 16;

    /// The inert plan: no site ever fires, whatever the seed.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            epoch: 0,
            exec_error: 0,
            admit_error: 0,
            worker_panic: 0,
            worker_slow: 0,
            wire_corrupt: 0,
            wire_truncate: 0,
            runaway: 0,
            max_slow_micros: 4000,
        }
    }

    /// True if any site has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.exec_error != 0
            || self.admit_error != 0
            || self.worker_panic != 0
            || self.worker_slow != 0
            || self.wire_corrupt != 0
            || self.wire_truncate != 0
            || self.runaway != 0
    }

    /// The same plan on a different stream epoch.
    pub fn with_epoch(self, epoch: u64) -> Self {
        FaultPlan { epoch, ..self }
    }

    fn rate(&self, point: FaultPoint) -> u32 {
        match point {
            FaultPoint::ExecStep => self.exec_error,
            FaultPoint::Admission => self.admit_error,
            FaultPoint::WorkerPanic => self.worker_panic,
            FaultPoint::WorkerSlow => self.worker_slow,
            FaultPoint::WireCorrupt => self.wire_corrupt,
            FaultPoint::WireTruncate => self.wire_truncate,
            FaultPoint::Runaway => self.runaway,
        }
    }

    /// Does the fault at `point` fire on the site's `counter`-th event?
    ///
    /// Pure and stateless: the same `(plan, point, counter)` always
    /// returns the same answer.
    pub fn fires(&self, point: FaultPoint, counter: u64) -> bool {
        let rate = self.rate(point);
        if rate == 0 {
            return false;
        }
        if rate >= Self::ALWAYS {
            return true;
        }
        // Runaway is a property of the request (the counter is its RNG
        // member key), not of the component executing it: the same
        // request must run away on every shard, retry, and migration
        // target, so the component's stream epoch is deliberately left
        // out of this one roll.
        let roll = if point == FaultPoint::Runaway {
            FaultPlan { epoch: 0, ..*self }.roll(point, counter)
        } else {
            self.roll(point, counter)
        };
        (roll & 0xffff) < rate as u64
    }

    /// Deterministic stall length in microseconds for a
    /// [`FaultPoint::WorkerSlow`] event that fired: 1–4 ms, clamped to
    /// [`max_slow_micros`](FaultPlan::max_slow_micros) so a chaos sweep
    /// has a hard bound on the total stall it can inject.
    pub fn delay_micros(&self, counter: u64) -> u64 {
        let natural = 1000 + (self.roll(FaultPoint::WorkerSlow, counter) >> 16) % 3000;
        natural.min(self.max_slow_micros.max(1))
    }

    /// Which byte offset (modulo the frame length) a fired
    /// [`FaultPoint::WireCorrupt`] event flips.
    pub fn corrupt_offset(&self, counter: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        ((self.roll(FaultPoint::WireCorrupt, counter) >> 16) % len as u64) as usize
    }

    /// One well-mixed 64-bit roll for `(seed, epoch, point, counter)`.
    fn roll(&self, point: FaultPoint, counter: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.epoch.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(point.tag().wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(counter);
        // splitmix64 finalizer: full avalanche so nearby counters and
        // epochs produce statistically independent rolls.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POINTS: [FaultPoint; 7] = [
        FaultPoint::ExecStep,
        FaultPoint::Admission,
        FaultPoint::WorkerPanic,
        FaultPoint::WorkerSlow,
        FaultPoint::WireCorrupt,
        FaultPoint::WireTruncate,
        FaultPoint::Runaway,
    ];

    #[test]
    fn default_plan_never_fires() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        for p in POINTS {
            for c in 0..1000 {
                assert!(!plan.fires(p, c));
            }
        }
    }

    #[test]
    fn always_rate_always_fires() {
        let plan = FaultPlan {
            seed: 42,
            exec_error: FaultPlan::ALWAYS,
            ..FaultPlan::none()
        };
        for c in 0..1000 {
            assert!(plan.fires(FaultPoint::ExecStep, c));
        }
    }

    #[test]
    fn decisions_are_replayable_and_seed_sensitive() {
        let mk = |seed| FaultPlan {
            seed,
            exec_error: FaultPlan::ALWAYS / 4,
            ..FaultPlan::none()
        };
        let sched = |plan: FaultPlan| -> Vec<bool> {
            (0..512)
                .map(|c| plan.fires(FaultPoint::ExecStep, c))
                .collect()
        };
        assert_eq!(sched(mk(1)), sched(mk(1)));
        assert_ne!(sched(mk(1)), sched(mk(2)));
    }

    #[test]
    fn rate_is_approximately_honored() {
        let plan = FaultPlan {
            seed: 9,
            worker_panic: FaultPlan::ALWAYS / 8,
            ..FaultPlan::none()
        };
        let fired = (0..100_000u64)
            .filter(|&c| plan.fires(FaultPoint::WorkerPanic, c))
            .count();
        let expect = 100_000 / 8;
        assert!(
            (fired as i64 - expect as i64).unsigned_abs() < expect as u64 / 5,
            "fired {fired} of 100000 at rate 1/8"
        );
    }

    #[test]
    fn sites_have_independent_streams() {
        let plan = FaultPlan {
            seed: 3,
            exec_error: FaultPlan::ALWAYS / 2,
            admit_error: FaultPlan::ALWAYS / 2,
            ..FaultPlan::none()
        };
        let a: Vec<bool> = (0..256)
            .map(|c| plan.fires(FaultPoint::ExecStep, c))
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|c| plan.fires(FaultPoint::Admission, c))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn epochs_decorrelate_streams() {
        let plan = FaultPlan {
            seed: 5,
            worker_panic: FaultPlan::ALWAYS / 2,
            ..FaultPlan::none()
        };
        let a: Vec<bool> = (0..256)
            .map(|c| plan.fires(FaultPoint::WorkerPanic, c))
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|c| plan.with_epoch(1).fires(FaultPoint::WorkerPanic, c))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn helpers_are_bounded() {
        let plan = FaultPlan {
            seed: 11,
            ..FaultPlan::none()
        };
        for c in 0..1000 {
            let d = plan.delay_micros(c);
            assert!((1000..4000).contains(&d), "delay {d}");
            assert!(plan.corrupt_offset(c, 16) < 16);
        }
        assert_eq!(plan.corrupt_offset(0, 0), 0);
    }

    #[test]
    fn slow_delays_respect_the_configured_ceiling() {
        let plan = FaultPlan {
            seed: 11,
            max_slow_micros: 1500,
            ..FaultPlan::none()
        };
        for c in 0..1000 {
            assert!(plan.delay_micros(c) <= 1500);
        }
        // A zero ceiling still stalls for at least a microsecond rather
        // than degenerating into a spin of zero-length sleeps.
        let zero = FaultPlan {
            max_slow_micros: 0,
            ..plan
        };
        for c in 0..100 {
            assert_eq!(zero.delay_micros(c), 1);
        }
    }
}
