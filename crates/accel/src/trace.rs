//! Kernel-launch tracing and simulated timing.
//!
//! The virtual machines report every kernel launch (and every runtime
//! superstep) to a [`Trace`], which prices it against a [`Backend`] and
//! accumulates simulated wall-clock time plus per-kernel utilization
//! statistics. Figure 5 reads `gradients / sim_time`; Figure 6 reads the
//! active-lane utilization of the gradient kernel.

use std::collections::BTreeMap;
use std::fmt;

use crate::backend::Backend;

/// One kernel launch reported by a runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchRecord {
    /// Kernel tag, e.g. `"add"`, `"grad"`, `"block:7"`, `"stack_push"`.
    pub kernel: String,
    /// Total useful floating-point work in the launch (all lanes).
    pub flops: f64,
    /// Sequential memory traffic in bytes.
    pub bytes: f64,
    /// Random-access (gather/scatter) traffic in bytes.
    pub random_bytes: f64,
    /// Independent elements available for parallel execution
    /// (batch members × per-member elements).
    pub parallel: usize,
    /// Batch members whose results are actually used (active lanes).
    pub active_members: usize,
    /// Total batch members processed (active + masked-out).
    pub total_members: usize,
}

impl LaunchRecord {
    /// Convenience constructor for a compute-only launch.
    pub fn compute(kernel: impl Into<String>, flops: f64, parallel: usize) -> LaunchRecord {
        LaunchRecord {
            kernel: kernel.into(),
            flops,
            bytes: 0.0,
            random_bytes: 0.0,
            parallel,
            active_members: parallel,
            total_members: parallel,
        }
    }
}

/// Aggregate statistics for one kernel tag.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Total flops across launches.
    pub flops: f64,
    /// Total simulated seconds spent.
    pub time: f64,
    /// Sum of active batch members over launches.
    pub active_members: u64,
    /// Sum of total batch members over launches.
    pub total_members: u64,
}

impl KernelStats {
    /// Active-lane utilization in `[0, 1]`: the fraction of processed
    /// batch members whose results were used.
    pub fn utilization(&self) -> f64 {
        if self.total_members == 0 {
            1.0
        } else {
            self.active_members as f64 / self.total_members as f64
        }
    }
}

/// One recorded event, for post-hoc re-pricing.
#[derive(Debug, Clone)]
enum Event {
    Launch(LaunchRecord),
    Logical(LaunchRecord),
    Superstep,
    /// Batch membership change: `joined` members admitted / `left`
    /// members retired, leaving `total_after` live members.
    Membership {
        joined: usize,
        left: usize,
        total_after: usize,
    },
    /// Lane migration: `moved_in` lanes injected / `moved_out` lanes
    /// extracted, leaving `total_after` live members. Kept separate from
    /// [`Event::Membership`] so a migrated lane is not double-counted as
    /// a fresh admission.
    Migration {
        moved_in: usize,
        moved_out: usize,
        total_after: usize,
    },
}

/// A priced execution trace.
#[derive(Debug, Clone)]
pub struct Trace {
    backend: Backend,
    sim_time: f64,
    launches: u64,
    supersteps: u64,
    members_admitted: u64,
    members_retired: u64,
    members_migrated_in: u64,
    members_migrated_out: u64,
    peak_members: usize,
    per_kernel: BTreeMap<String, KernelStats>,
    logical: BTreeMap<String, KernelStats>,
    events: Option<Vec<Event>>,
}

impl Trace {
    /// Start an empty trace priced against `backend`.
    pub fn new(backend: Backend) -> Trace {
        Trace {
            backend,
            sim_time: 0.0,
            launches: 0,
            supersteps: 0,
            members_admitted: 0,
            members_retired: 0,
            members_migrated_in: 0,
            members_migrated_out: 0,
            peak_members: 0,
            per_kernel: BTreeMap::new(),
            logical: BTreeMap::new(),
            events: None,
        }
    }

    /// Start a trace that additionally records every event, enabling
    /// [`Trace::replay_as`]. Recording is only meaningful when the replay
    /// target shares the original backend's *semantics* (dispatch mode
    /// and functional-stack flag) — e.g. pricing one XLA-mode run for
    /// both the CPU and the GPU device.
    pub fn recording(backend: Backend) -> Trace {
        let mut t = Trace::new(backend);
        t.events = Some(Vec::new());
        t
    }

    /// Re-price a recorded run under another backend.
    ///
    /// # Panics
    ///
    /// Panics if this trace was not created with [`Trace::recording`], or
    /// if the target backend disagrees on dispatch mode or functional
    /// stack updates (the recorded event stream would be wrong).
    pub fn replay_as(&self, backend: Backend) -> Trace {
        let events = self
            .events
            .as_ref()
            .expect("replay_as requires Trace::recording");
        assert_eq!(
            self.backend.mode, backend.mode,
            "replay target must share the dispatch mode"
        );
        assert_eq!(
            self.backend.functional_stack_updates, backend.functional_stack_updates,
            "replay target must share stack-update semantics"
        );
        let mut out = Trace::new(backend);
        for e in events {
            match e {
                Event::Launch(r) => {
                    out.launch(r);
                }
                Event::Logical(r) => out.record_logical(r),
                Event::Superstep => out.superstep(),
                Event::Membership {
                    joined,
                    left,
                    total_after,
                } => out.membership(*joined, *left, *total_after),
                Event::Migration {
                    moved_in,
                    moved_out,
                    total_after,
                } => {
                    out.migrate_in(*moved_in, *total_after);
                    out.migrate_out(*moved_out, *total_after);
                }
            }
        }
        out
    }

    /// The backend this trace prices against.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Price one kernel launch and accumulate it. Returns the launch's
    /// simulated duration in seconds.
    pub fn launch(&mut self, rec: &LaunchRecord) -> f64 {
        let b = &self.backend;
        let compute = if b.scalar_compute {
            b.device.scalar_time(rec.flops)
        } else {
            b.device.vector_time(rec.flops, rec.parallel)
        };
        let mem =
            b.device.mem_time(rec.bytes) + b.device.mem_time(rec.random_bytes) * b.gather_penalty;
        // Compute and memory overlap on real hardware; dispatch does not.
        let t = b.launch_overhead + compute.max(mem);
        if let Some(ev) = self.events.as_mut() {
            ev.push(Event::Launch(rec.clone()));
        }
        self.sim_time += t;
        self.launches += 1;
        let s = self.per_kernel.entry(rec.kernel.clone()).or_default();
        s.launches += 1;
        s.flops += rec.flops;
        s.time += t;
        s.active_members += rec.active_members as u64;
        s.total_members += rec.total_members as u64;
        t
    }

    /// Record *logical* per-kernel statistics without pricing any time.
    ///
    /// Runtimes report every primitive here regardless of kernel fusion,
    /// so utilization questions ("what fraction of gradient lanes were
    /// useful?", the paper's Figure 6) can be answered even when the
    /// timed launches are whole fused blocks.
    pub fn record_logical(&mut self, rec: &LaunchRecord) {
        if let Some(ev) = self.events.as_mut() {
            ev.push(Event::Logical(rec.clone()));
        }
        let s = self.logical.entry(rec.kernel.clone()).or_default();
        s.launches += 1;
        s.flops += rec.flops;
        s.active_members += rec.active_members as u64;
        s.total_members += rec.total_members as u64;
    }

    /// Record a batch-membership change: `joined` members admitted and
    /// `left` members retired, leaving `total_after` live members.
    ///
    /// Dynamic-admission runtimes report every admission/retirement here
    /// so launch accounting stays truthful as the member set changes: the
    /// per-launch `total_members` in subsequent [`LaunchRecord`]s reflects
    /// the new batch width, and this method keeps the aggregate admission
    /// counters and the peak batch size in sync.
    pub fn membership(&mut self, joined: usize, left: usize, total_after: usize) {
        if let Some(ev) = self.events.as_mut() {
            ev.push(Event::Membership {
                joined,
                left,
                total_after,
            });
        }
        self.members_admitted += joined as u64;
        self.members_retired += left as u64;
        self.peak_members = self.peak_members.max(total_after);
    }

    /// Record `moved_in` lanes injected by migration, leaving
    /// `total_after` live members. Migration is accounted separately
    /// from [`Trace::membership`] so "members admitted == requests"
    /// invariants survive rebalancing: a migrated lane was admitted
    /// exactly once, on its first shard.
    pub fn migrate_in(&mut self, moved_in: usize, total_after: usize) {
        if let Some(ev) = self.events.as_mut() {
            ev.push(Event::Migration {
                moved_in,
                moved_out: 0,
                total_after,
            });
        }
        self.members_migrated_in += moved_in as u64;
        self.peak_members = self.peak_members.max(total_after);
    }

    /// Record `moved_out` lanes extracted by migration, leaving
    /// `total_after` live members (see [`Trace::migrate_in`]).
    pub fn migrate_out(&mut self, moved_out: usize, total_after: usize) {
        if let Some(ev) = self.events.as_mut() {
            ev.push(Event::Migration {
                moved_in: 0,
                moved_out,
                total_after,
            });
        }
        self.members_migrated_out += moved_out as u64;
        self.peak_members = self.peak_members.max(total_after);
    }

    /// Total members ever admitted into the traced batch.
    pub fn members_admitted(&self) -> u64 {
        self.members_admitted
    }

    /// Total members retired (completed and compacted out).
    pub fn members_retired(&self) -> u64 {
        self.members_retired
    }

    /// Total lanes injected by cross-shard migration.
    pub fn members_migrated_in(&self) -> u64 {
        self.members_migrated_in
    }

    /// Total lanes extracted by cross-shard migration.
    pub fn members_migrated_out(&self) -> u64 {
        self.members_migrated_out
    }

    /// Largest live batch size observed across membership changes.
    pub fn peak_members(&self) -> usize {
        self.peak_members
    }

    /// Members currently live according to membership accounting:
    /// admitted plus migrated-in, minus retired and migrated-out. Shard
    /// routers key their least-loaded decision on this (together with
    /// the queue depth), so the load signal comes from the same
    /// accounting that prices launches.
    pub fn live_members(&self) -> u64 {
        (self.members_admitted + self.members_migrated_in)
            .saturating_sub(self.members_retired + self.members_migrated_out)
    }

    /// Fold another trace, assumed to have run **concurrently** on its
    /// own host thread, into this one:
    ///
    /// - `sim_time` becomes the *maximum* of the two (parallel shards
    ///   overlap in wall-clock time, they do not serialize);
    /// - launches, supersteps, membership counters, and per-kernel
    ///   statistics (timed and logical) are summed, so aggregate
    ///   utilization over the whole fleet stays truthful;
    /// - `peak_members` is summed — an upper bound on the simultaneous
    ///   live members across shards (per-shard peaks need not coincide
    ///   in time, but capacity planning wants the bound).
    ///
    /// The merged trace does not carry a replayable event stream: the
    /// interleaving of concurrent shards is not a single recorded run,
    /// so event recording is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the two traces price against different backends —
    /// summed statistics would be meaningless across cost models.
    pub fn merge_parallel(&mut self, other: &Trace) {
        assert_eq!(
            self.backend, other.backend,
            "merge_parallel requires a shared backend"
        );
        self.sim_time = self.sim_time.max(other.sim_time);
        self.launches += other.launches;
        self.supersteps += other.supersteps;
        self.members_admitted += other.members_admitted;
        self.members_retired += other.members_retired;
        self.members_migrated_in += other.members_migrated_in;
        self.members_migrated_out += other.members_migrated_out;
        self.peak_members += other.peak_members;
        for (k, s) in &other.per_kernel {
            let dst = self.per_kernel.entry(k.clone()).or_default();
            dst.launches += s.launches;
            dst.flops += s.flops;
            dst.time += s.time;
            dst.active_members += s.active_members;
            dst.total_members += s.total_members;
        }
        for (k, s) in &other.logical {
            let dst = self.logical.entry(k.clone()).or_default();
            dst.launches += s.launches;
            dst.flops += s.flops;
            dst.active_members += s.active_members;
            dst.total_members += s.total_members;
        }
        self.events = None;
    }

    /// Record one runtime superstep (block selection + host control).
    pub fn superstep(&mut self) {
        if let Some(ev) = self.events.as_mut() {
            ev.push(Event::Superstep);
        }
        self.sim_time += self.backend.superstep_overhead;
        self.supersteps += 1;
    }

    /// Add raw host-side time (e.g. one-off setup being measured).
    pub fn add_host_time(&mut self, seconds: f64) {
        self.sim_time += seconds;
    }

    /// Total simulated seconds so far.
    pub fn sim_time(&self) -> f64 {
        self.sim_time
    }

    /// Total kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total runtime supersteps so far.
    pub fn supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Statistics for one kernel tag, if it was ever launched.
    pub fn kernel_stats(&self, kernel: &str) -> Option<&KernelStats> {
        self.per_kernel.get(kernel)
    }

    /// Iterate over all per-kernel statistics, ordered by tag.
    pub fn kernels(&self) -> impl Iterator<Item = (&str, &KernelStats)> {
        self.per_kernel.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Logical statistics for one kernel tag (fusion-independent).
    pub fn logical_stats(&self, kernel: &str) -> Option<&KernelStats> {
        self.logical.get(kernel)
    }

    /// Sum of `active_members` over logical records of `kernel` — e.g.
    /// the number of *useful* gradient evaluations when
    /// `kernel == "grad"`. Falls back to timed launches if the kernel was
    /// never logically recorded.
    pub fn useful_count(&self, kernel: &str) -> u64 {
        self.logical_stats(kernel)
            .or_else(|| self.kernel_stats(kernel))
            .map_or(0, |s| s.active_members)
    }

    /// Active-lane utilization of one kernel tag (1.0 if never seen),
    /// preferring fusion-independent logical records.
    pub fn utilization(&self, kernel: &str) -> f64 {
        self.logical_stats(kernel)
            .or_else(|| self.kernel_stats(kernel))
            .map_or(1.0, KernelStats::utilization)
    }

    /// Whether stack updates on this backend copy the whole buffer.
    pub fn functional_stack_updates(&self) -> bool {
        self.backend.functional_stack_updates
    }

    /// Reset all counters, keeping the backend. Used to exclude warm-up
    /// (compilation, graph construction) from measurements, as the paper
    /// does ("the measured time counts only a warm run").
    pub fn reset(&mut self) {
        self.sim_time = 0.0;
        self.launches = 0;
        self.supersteps = 0;
        self.members_admitted = 0;
        self.members_retired = 0;
        self.members_migrated_in = 0;
        self.members_migrated_out = 0;
        self.peak_members = 0;
        self.per_kernel.clear();
        self.logical.clear();
        if let Some(ev) = self.events.as_mut() {
            ev.clear();
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace[{}]: {:.6}s, {} launches, {} supersteps",
            self.backend.name, self.sim_time, self.launches, self.supersteps
        )?;
        for (k, s) in &self.per_kernel {
            writeln!(
                f,
                "  {k}: {} launches, {:.3e} flops, {:.6}s, util {:.3}",
                s.launches,
                s.flops,
                s.time,
                s.utilization()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;

    #[test]
    fn launch_accumulates_time_and_stats() {
        let mut tr = Trace::new(Backend::native_cpu());
        let t = tr.launch(&LaunchRecord::compute("grad", 3.0e9, 1));
        assert!(
            t > 0.9 && t < 1.1,
            "3 Gflops at 3 Gflop/s scalar ≈ 1 s, got {t}"
        );
        assert_eq!(tr.launches(), 1);
        assert_eq!(tr.kernel_stats("grad").unwrap().launches, 1);
        assert!(tr.sim_time() > 0.0);
    }

    #[test]
    fn utilization_tracks_active_lanes() {
        let mut tr = Trace::new(Backend::xla_cpu());
        tr.launch(&LaunchRecord {
            kernel: "grad".into(),
            flops: 100.0,
            bytes: 0.0,
            random_bytes: 0.0,
            parallel: 4,
            active_members: 1,
            total_members: 4,
        });
        tr.launch(&LaunchRecord {
            kernel: "grad".into(),
            flops: 100.0,
            bytes: 0.0,
            random_bytes: 0.0,
            parallel: 4,
            active_members: 3,
            total_members: 4,
        });
        assert_eq!(tr.utilization("grad"), 0.5);
        assert_eq!(tr.useful_count("grad"), 4);
        assert_eq!(tr.utilization("never-launched"), 1.0);
    }

    #[test]
    fn logical_records_cost_no_time_but_count_utilization() {
        let mut tr = Trace::new(Backend::xla_cpu());
        tr.record_logical(&LaunchRecord {
            kernel: "grad".into(),
            flops: 100.0,
            bytes: 0.0,
            random_bytes: 0.0,
            parallel: 8,
            active_members: 2,
            total_members: 8,
        });
        assert_eq!(tr.sim_time(), 0.0);
        assert_eq!(tr.utilization("grad"), 0.25);
        assert_eq!(tr.useful_count("grad"), 2);
        // Logical stats take precedence over timed ones.
        tr.launch(&LaunchRecord::compute("grad", 100.0, 8));
        assert_eq!(tr.utilization("grad"), 0.25);
    }

    #[test]
    fn eager_dispatch_dominates_small_batches() {
        let mut eager = Trace::new(Backend::eager_cpu());
        let mut xla = Trace::new(Backend::xla_cpu());
        let rec = LaunchRecord::compute("add", 100.0, 1);
        let te = eager.launch(&rec);
        let tx = xla.launch(&rec);
        assert!(te > 10.0 * tx, "eager {te} vs xla {tx}");
    }

    #[test]
    fn superstep_and_reset() {
        let mut tr = Trace::new(Backend::hybrid_cpu());
        tr.superstep();
        tr.superstep();
        assert_eq!(tr.supersteps(), 2);
        assert!(tr.sim_time() > 0.0);
        tr.reset();
        assert_eq!(tr.supersteps(), 0);
        assert_eq!(tr.sim_time(), 0.0);
    }

    #[test]
    fn memory_and_compute_overlap() {
        // A launch that is memory-bound should cost ~memory time, not sum.
        let mut tr = Trace::new(Backend::xla_cpu());
        let bw = tr.backend().device.mem_bw;
        let t = tr.launch(&LaunchRecord {
            kernel: "copy".into(),
            flops: 1.0,
            bytes: bw, // exactly one second of traffic
            random_bytes: 0.0,
            parallel: 1,
            active_members: 1,
            total_members: 1,
        });
        assert!((t - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn membership_counters_track_admission_and_peak() {
        let mut tr = Trace::recording(Backend::hybrid_cpu());
        tr.membership(4, 0, 4);
        tr.membership(2, 1, 5);
        tr.membership(0, 5, 0);
        assert_eq!(tr.members_admitted(), 6);
        assert_eq!(tr.members_retired(), 6);
        assert_eq!(tr.peak_members(), 5);
        // Membership survives replay and is cleared by reset.
        let re = tr.replay_as(Backend::hybrid_cpu());
        assert_eq!(re.members_admitted(), 6);
        assert_eq!(re.peak_members(), 5);
        tr.reset();
        assert_eq!(tr.members_admitted(), 0);
        assert_eq!(tr.peak_members(), 0);
    }

    #[test]
    fn live_members_tracks_admission_minus_retirement() {
        let mut tr = Trace::new(Backend::hybrid_cpu());
        assert_eq!(tr.live_members(), 0);
        tr.membership(4, 0, 4);
        assert_eq!(tr.live_members(), 4);
        tr.membership(2, 3, 3);
        assert_eq!(tr.live_members(), 3);
        tr.membership(0, 3, 0);
        assert_eq!(tr.live_members(), 0);
    }

    #[test]
    fn migration_counters_are_separate_from_admission() {
        let mut tr = Trace::recording(Backend::hybrid_cpu());
        tr.membership(4, 0, 4);
        tr.migrate_out(2, 2);
        assert_eq!(tr.live_members(), 2);
        tr.migrate_in(1, 3);
        assert_eq!(tr.members_admitted(), 4, "migration is not admission");
        assert_eq!(tr.members_migrated_in(), 1);
        assert_eq!(tr.members_migrated_out(), 2);
        assert_eq!(tr.live_members(), 3);
        assert_eq!(tr.peak_members(), 4);
        // Migration survives replay, merges additively, and resets.
        let re = tr.replay_as(Backend::hybrid_cpu());
        assert_eq!(re.members_migrated_in(), 1);
        assert_eq!(re.members_migrated_out(), 2);
        let mut sum = Trace::new(Backend::hybrid_cpu());
        sum.merge_parallel(&tr);
        sum.merge_parallel(&tr);
        assert_eq!(sum.members_migrated_in(), 2);
        assert_eq!(sum.members_migrated_out(), 4);
        tr.reset();
        assert_eq!(tr.members_migrated_in(), 0);
        assert_eq!(tr.members_migrated_out(), 0);
    }

    #[test]
    fn merge_parallel_overlaps_time_and_sums_stats() {
        let mut a = Trace::new(Backend::hybrid_cpu());
        let mut b = Trace::new(Backend::hybrid_cpu());
        a.superstep();
        a.launch(&LaunchRecord {
            kernel: "grad".into(),
            flops: 100.0,
            bytes: 0.0,
            random_bytes: 0.0,
            parallel: 4,
            active_members: 2,
            total_members: 4,
        });
        a.membership(4, 0, 4);
        for _ in 0..3 {
            b.superstep();
        }
        b.launch(&LaunchRecord {
            kernel: "grad".into(),
            flops: 100.0,
            bytes: 0.0,
            random_bytes: 0.0,
            parallel: 4,
            active_members: 4,
            total_members: 4,
        });
        b.membership(2, 2, 0);
        let (ta, tb) = (a.sim_time(), b.sim_time());
        a.merge_parallel(&b);
        // Concurrent shards overlap: wall-clock is the max, not the sum.
        assert_eq!(a.sim_time(), ta.max(tb));
        assert_eq!(a.supersteps(), 4);
        assert_eq!(a.launches(), 2);
        assert_eq!(a.members_admitted(), 6);
        assert_eq!(a.members_retired(), 2);
        assert_eq!(a.peak_members(), 4);
        // Utilization aggregates across shards: (2 + 4) / (4 + 4).
        assert_eq!(a.utilization("grad"), 0.75);
        let g = a.kernel_stats("grad").unwrap();
        assert_eq!(g.launches, 2);
        assert_eq!(g.flops, 200.0);
    }

    #[test]
    #[should_panic(expected = "shared backend")]
    fn merge_parallel_rejects_mismatched_backends() {
        let mut a = Trace::new(Backend::hybrid_cpu());
        let b = Trace::new(Backend::xla_cpu());
        a.merge_parallel(&b);
    }

    #[test]
    fn display_lists_kernels() {
        let mut tr = Trace::new(Backend::native_cpu());
        tr.launch(&LaunchRecord::compute("grad", 10.0, 1));
        let s = tr.to_string();
        assert!(s.contains("grad"));
        assert!(s.contains("native-cpu"));
    }
}
