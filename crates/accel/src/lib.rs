//! # autobatch-accel
//!
//! A simulated-accelerator execution layer: analytic device models,
//! backend dispatch profiles, and kernel-launch tracing.
//!
//! The paper's evaluation ([Radul et al., MLSys 2020](https://arxiv.org/abs/1910.11141),
//! §4) timed TensorFlow Eager, XLA-compiled, and hybrid executions on an
//! 88-core CPU and a Tesla P100. This reproduction cannot access that
//! testbed, so the autobatching virtual machines instead *report* every
//! kernel launch to a [`Trace`], which prices it against a [`Backend`]
//! (device throughput + dispatch profile) and accumulates simulated time.
//! The figure-regenerating benches then plot `work / sim_time`.
//!
//! The cost model captures the four mechanisms that drive the shapes of
//! the paper's figures:
//!
//! 1. per-launch dispatch overhead (large for Eager, small for XLA),
//! 2. kernel fusion (XLA/Hybrid launch one kernel per basic block),
//! 3. SIMD lane saturation (linear scaling, then flat),
//! 4. stack-materialization cost under static shapes (functional
//!    whole-buffer updates and gather/scatter penalties).
//!
//! # Examples
//!
//! ```
//! use autobatch_accel::{Backend, LaunchRecord, Trace};
//!
//! let mut trace = Trace::new(Backend::xla_gpu());
//! trace.launch(&LaunchRecord::compute("grad", 4.0e6, 1024));
//! assert!(trace.sim_time() > 0.0);
//! assert_eq!(trace.kernel_stats("grad").unwrap().launches, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod device;
mod trace;

pub use backend::{Backend, DispatchMode};
pub use device::Device;
pub use trace::{KernelStats, LaunchRecord, Trace};
