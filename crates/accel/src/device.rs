//! Simulated hardware devices.
//!
//! The paper's evaluation ran on an 88-core CPU and a Tesla P100 GPU. We
//! cannot access that testbed, so the benchmarks execute on analytic
//! device models parameterized by the four quantities that drive the
//! shapes of the paper's figures: SIMD lane count, per-lane throughput,
//! scalar throughput, and memory bandwidth.

/// An analytic model of one execution device.
///
/// Work is priced wave-by-wave: a kernel over `E` independent elements
/// runs in `ceil(E / lanes)` waves, each costing
/// `flops_per_element / lane_flops` seconds. Throughput therefore scales
/// linearly with batch size until the lanes saturate and is flat
/// afterwards — precisely the behaviour Figure 5 reports.
/// Equality and hashing compare the throughput fields by bit pattern
/// (with `-0.0` normalized to `0.0`), so `Device` can key hash maps just
/// like [`DispatchMode`](crate::DispatchMode). Device parameters are
/// plain finite constants; NaN fields are outside the contract.
#[derive(Debug, Clone, Copy)]
pub struct Device {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of parallel SIMD lanes (vector units × cores for a CPU,
    /// resident threads for a GPU).
    pub lanes: usize,
    /// Sustained per-lane throughput in flop/s when running vectorized.
    pub lane_flops: f64,
    /// Sustained throughput in flop/s of *scalar* (non-SIMD, single-core)
    /// native code, used to price the Stan-like baseline.
    pub scalar_flops: f64,
    /// Main-memory bandwidth in bytes/s.
    pub mem_bw: f64,
}

/// Normalize a float for bitwise equality/hashing: `-0.0` and `0.0`
/// collapse to the same bit pattern.
pub(crate) fn f64_key(x: f64) -> u64 {
    (x + 0.0).to_bits()
}

impl PartialEq for Device {
    fn eq(&self, other: &Device) -> bool {
        self.name == other.name
            && self.lanes == other.lanes
            && f64_key(self.lane_flops) == f64_key(other.lane_flops)
            && f64_key(self.scalar_flops) == f64_key(other.scalar_flops)
            && f64_key(self.mem_bw) == f64_key(other.mem_bw)
    }
}

impl Eq for Device {}

impl std::hash::Hash for Device {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.lanes.hash(state);
        f64_key(self.lane_flops).hash(state);
        f64_key(self.scalar_flops).hash(state);
        f64_key(self.mem_bw).hash(state);
    }
}

impl Device {
    /// An 88-core server CPU comparable to the paper's shared host:
    /// 88 cores × 4-wide SIMD at ~2 GHz in the paper's 32-bit precision
    /// (§4.1: "in 32-bit floating-point precision").
    pub fn cpu_88core() -> Device {
        Device {
            name: "cpu-88core",
            lanes: 88 * 4,
            lane_flops: 4.0e9,
            scalar_flops: 3.0e9,
            mem_bw: 100.0e9,
        }
    }

    /// A Tesla-P100-class GPU: ~1.8k f64 cores at ~0.66 GHz effective
    /// (≈ 4.7 Tflop/s f64 peak scaled to a sustained ~1.2 Tflop/s),
    /// 500 GB/s HBM2.
    pub fn gpu_p100() -> Device {
        Device {
            name: "gpu-p100",
            lanes: 56 * 1024,
            lane_flops: 8.0e7,
            scalar_flops: 1.0e8,
            mem_bw: 500.0e9,
        }
    }

    /// Time in seconds to execute `flops` of work spread evenly over
    /// `parallel` independent elements, using the vectorized lanes.
    ///
    /// `parallel == 0` costs nothing.
    pub fn vector_time(&self, flops: f64, parallel: usize) -> f64 {
        if parallel == 0 || flops <= 0.0 {
            return 0.0;
        }
        let waves = parallel.div_ceil(self.lanes) as f64;
        let flops_per_elem = flops / parallel as f64;
        waves * flops_per_elem / self.lane_flops
    }

    /// Time in seconds to execute `flops` of scalar native code.
    pub fn scalar_time(&self, flops: f64) -> f64 {
        flops.max(0.0) / self.scalar_flops
    }

    /// Time in seconds to move `bytes` of sequential memory traffic.
    pub fn mem_time(&self, bytes: f64) -> f64 {
        bytes.max(0.0) / self.mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_time_scales_with_waves() {
        let d = Device {
            name: "toy",
            lanes: 4,
            lane_flops: 1.0,
            scalar_flops: 1.0,
            mem_bw: 1.0,
        };
        // 4 elements, 1 flop each: one wave of 1 second.
        assert_eq!(d.vector_time(4.0, 4), 1.0);
        // 5 elements: two waves.
        assert_eq!(d.vector_time(5.0, 5), 2.0);
        // 1 element costs the same as a full wave per flop.
        assert_eq!(d.vector_time(1.0, 1), 1.0);
        // Below-lane batches are "free" parallelism: 2 elems at 1 flop
        // each take one wave.
        assert_eq!(d.vector_time(2.0, 2), 1.0);
    }

    #[test]
    fn zero_work_is_free() {
        let d = Device::cpu_88core();
        assert_eq!(d.vector_time(0.0, 10), 0.0);
        assert_eq!(d.vector_time(10.0, 0), 0.0);
        assert_eq!(d.scalar_time(0.0), 0.0);
        assert_eq!(d.mem_time(0.0), 0.0);
    }

    #[test]
    fn presets_are_sane() {
        let cpu = Device::cpu_88core();
        let gpu = Device::gpu_p100();
        // GPU has far more parallel throughput; CPU wins scalar.
        assert!(gpu.lanes as f64 * gpu.lane_flops > cpu.lanes as f64 * cpu.lane_flops);
        assert!(cpu.scalar_flops > gpu.scalar_flops);
        assert!(gpu.mem_bw > cpu.mem_bw);
    }

    #[test]
    fn gpu_saturates_later_than_cpu() {
        let cpu = Device::cpu_88core();
        let gpu = Device::gpu_p100();
        // In the saturated regime (both devices run many waves) the GPU's
        // larger aggregate throughput wins; at small batches the CPU's
        // faster lanes win. That is the crossover shape of Figure 5.
        let per_elem = 1000.0;
        let big = 1 << 20;
        assert!(
            cpu.vector_time(per_elem * big as f64, big)
                > gpu.vector_time(per_elem * big as f64, big)
        );
        let small = 64;
        assert!(
            cpu.vector_time(per_elem * small as f64, small)
                < gpu.vector_time(per_elem * small as f64, small)
        );
    }
}
