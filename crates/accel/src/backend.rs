//! Execution backend configurations.
//!
//! A backend pairs a [`Device`] with a *dispatch profile* describing how
//! the host drives kernels. The profiles encode the distinctions the
//! paper's Figure 5 measures:
//!
//! - **Eager**: every primitive is a separate kernel launch paying full
//!   framework dispatch overhead (TensorFlow Eager in the paper);
//! - **XLA**: basic blocks are fused into single kernels with small
//!   launch overhead; stack pushes/pops are *functional* updates that
//!   copy the whole stack buffer (as XLA's static-shape tensors do);
//! - **Hybrid**: XLA-fused basic blocks driven by eager host control,
//!   paying host-side per-superstep overhead but avoiding functional
//!   stack updates (the control language keeps the stacks);
//! - **Native**: scalar native code with negligible dispatch — the
//!   Stan-like baseline.

use crate::device::Device;

/// How the host dispatches work to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchMode {
    /// One launch per primitive op, full framework overhead.
    Eager,
    /// One launch per fused basic block, compiled overhead.
    Xla,
    /// Fused blocks + eager host control between supersteps.
    Hybrid,
    /// Scalar native code (no kernel launches at all).
    Native,
}

/// A fully specified execution backend for the cost model.
///
/// Like [`DispatchMode`], `Backend` is `Eq + Hash` so serving code can
/// key caches and admission tables by backend: the float overhead fields
/// compare by bit pattern (with `-0.0` normalized to `0.0`). Backends are
/// built from finite constants; NaN fields are outside the contract.
#[derive(Debug, Clone, Copy)]
pub struct Backend {
    /// Display name, e.g. `"pc-xla-gpu"`.
    pub name: &'static str,
    /// The hardware model.
    pub device: Device,
    /// The dispatch style.
    pub mode: DispatchMode,
    /// Host-side cost of one kernel launch, seconds.
    pub launch_overhead: f64,
    /// Host-side cost per runtime superstep (block selection, mask
    /// computation, Python-style interpreter overhead), seconds.
    pub superstep_overhead: f64,
    /// Whether stack updates are functional (copy the whole `[D, Z, ..]`
    /// buffer) as under XLA's static-shape discipline, or in-place.
    pub functional_stack_updates: bool,
    /// Multiplier on memory traffic for random-access gather/scatter
    /// relative to sequential streams.
    pub gather_penalty: f64,
    /// Whether compute is priced at scalar (non-SIMD) throughput.
    pub scalar_compute: bool,
}

impl PartialEq for Backend {
    fn eq(&self, other: &Backend) -> bool {
        use crate::device::f64_key;
        self.name == other.name
            && self.device == other.device
            && self.mode == other.mode
            && f64_key(self.launch_overhead) == f64_key(other.launch_overhead)
            && f64_key(self.superstep_overhead) == f64_key(other.superstep_overhead)
            && self.functional_stack_updates == other.functional_stack_updates
            && f64_key(self.gather_penalty) == f64_key(other.gather_penalty)
            && self.scalar_compute == other.scalar_compute
    }
}

impl Eq for Backend {}

impl std::hash::Hash for Backend {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use crate::device::f64_key;
        self.name.hash(state);
        self.device.hash(state);
        self.mode.hash(state);
        f64_key(self.launch_overhead).hash(state);
        f64_key(self.superstep_overhead).hash(state);
        self.functional_stack_updates.hash(state);
        f64_key(self.gather_penalty).hash(state);
        self.scalar_compute.hash(state);
    }
}

impl Backend {
    /// TensorFlow-Eager-style backend: high per-primitive dispatch cost.
    pub fn eager(device: Device, name: &'static str) -> Backend {
        Backend {
            name,
            device,
            mode: DispatchMode::Eager,
            launch_overhead: 2e-3,
            superstep_overhead: 10e-3,
            functional_stack_updates: false,
            gather_penalty: 4.0,
            scalar_compute: false,
        }
    }

    /// Fully XLA-compiled backend: cheap fused-block launches, but
    /// functional (whole-buffer) stack updates.
    pub fn xla(device: Device, name: &'static str) -> Backend {
        Backend {
            name,
            device,
            mode: DispatchMode::Xla,
            launch_overhead: 20e-6,
            superstep_overhead: 3e-3,
            functional_stack_updates: true,
            gather_penalty: 4.0,
            scalar_compute: false,
        }
    }

    /// Hybrid backend: XLA-fused blocks under eager host control.
    pub fn hybrid(device: Device, name: &'static str) -> Backend {
        Backend {
            name,
            device,
            mode: DispatchMode::Hybrid,
            launch_overhead: 5e-3,
            superstep_overhead: 10e-3,
            functional_stack_updates: false,
            gather_penalty: 4.0,
            scalar_compute: false,
        }
    }

    /// Native scalar backend (the Stan-like baseline).
    pub fn native(device: Device, name: &'static str) -> Backend {
        Backend {
            name,
            device,
            mode: DispatchMode::Native,
            launch_overhead: 5e-9,
            superstep_overhead: 0.0,
            functional_stack_updates: false,
            gather_penalty: 1.0,
            scalar_compute: true,
        }
    }

    /// The five named configurations of the paper's Figure 5, on CPU.
    pub fn eager_cpu() -> Backend {
        Backend::eager(Device::cpu_88core(), "eager-cpu")
    }

    /// XLA-compiled CPU backend.
    pub fn xla_cpu() -> Backend {
        Backend::xla(Device::cpu_88core(), "xla-cpu")
    }

    /// Hybrid CPU backend.
    pub fn hybrid_cpu() -> Backend {
        Backend::hybrid(Device::cpu_88core(), "hybrid-cpu")
    }

    /// Native scalar CPU backend (Stan stand-in).
    pub fn native_cpu() -> Backend {
        Backend::native(Device::cpu_88core(), "native-cpu")
    }

    /// Eager GPU backend.
    pub fn eager_gpu() -> Backend {
        Backend::eager(Device::gpu_p100(), "eager-gpu")
    }

    /// XLA-compiled GPU backend.
    pub fn xla_gpu() -> Backend {
        Backend::xla(Device::gpu_p100(), "xla-gpu")
    }

    /// Hybrid GPU backend.
    pub fn hybrid_gpu() -> Backend {
        Backend::hybrid(Device::gpu_p100(), "hybrid-gpu")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ordering_matches_paper_narrative() {
        // Within a compiled program, per-launch cost is smallest (XLA);
        // eager per-primitive dispatch and the hybrid's per-fused-kernel
        // invocation cost (paper §4.1 hypothesis 4) are both much larger;
        // native code pays essentially nothing.
        assert!(Backend::eager_cpu().launch_overhead > Backend::xla_cpu().launch_overhead);
        assert!(Backend::hybrid_cpu().launch_overhead > Backend::xla_cpu().launch_overhead);
        assert!(Backend::native_cpu().launch_overhead < Backend::xla_cpu().launch_overhead);
    }

    #[test]
    fn xla_uses_functional_stacks() {
        assert!(Backend::xla_cpu().functional_stack_updates);
        assert!(!Backend::hybrid_cpu().functional_stack_updates);
        assert!(!Backend::eager_cpu().functional_stack_updates);
    }

    #[test]
    fn backend_is_hashable_and_eq_like_dispatch_mode() {
        use std::collections::HashMap;
        let mut costs: HashMap<Backend, f64> = HashMap::new();
        costs.insert(Backend::xla_cpu(), 1.0);
        costs.insert(Backend::hybrid_cpu(), 2.0);
        assert_eq!(costs[&Backend::xla_cpu()], 1.0);
        assert_eq!(Backend::xla_cpu(), Backend::xla_cpu());
        assert_ne!(Backend::xla_cpu(), Backend::xla_gpu());
        // -0.0 and 0.0 hash and compare identically.
        let mut a = Backend::native_cpu();
        let mut b = Backend::native_cpu();
        a.superstep_overhead = 0.0;
        b.superstep_overhead = -0.0;
        assert_eq!(a, b);
        let mut m: HashMap<Backend, u8> = HashMap::new();
        m.insert(a, 1);
        assert_eq!(m[&b], 1);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Backend::eager_cpu().name,
            Backend::xla_cpu().name,
            Backend::hybrid_cpu().name,
            Backend::native_cpu().name,
            Backend::eager_gpu().name,
            Backend::xla_gpu().name,
            Backend::hybrid_gpu().name,
        ];
        let mut unique = names.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
