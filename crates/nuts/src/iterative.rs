//! The *iterative* (non-recursive) NUTS rewrite — the related work the
//! paper's §5 cites (Phan & Pradhan's "Iterative NUTS"; Lao & Dillon's
//! unrolled implementation for TensorFlow Probability): NUTS's recursive
//! tree doubling re-expressed as a flat loop over leaves with `O(log)`
//! checkpoint memory, written *by hand* for the express purpose of
//! running on accelerators without recursion.
//!
//! The paper's point stands either way: this rewrite took real insight
//! (the dyadic checkpoint indexing below), applies to exactly one
//! algorithm, and produces code far from the textbook presentation —
//! whereas program-counter autobatching mechanically compiles the
//! recursive version. Having both lets the test suite confirm they build
//! *identical trees* (same leaves, boundaries, admissible counts, and
//! stopping decisions) from the same inputs.
//!
//! Checkpoint scheme: leaves are numbered `0..2^j` in build order. A
//! dyadic subtree `[a, a + 2^k - 1]` completes at its odd right edge
//! `b`, where `2^k` divides `b + 1`; its left-edge state was saved when
//! leaf `a` (even) was built, in slot `popcount(a)` — slots free up
//! exactly when no enclosing subtree still needs them, so `j` slots
//! suffice for a depth-`j` tree.

use autobatch_tensor::{CounterRng, Tensor};

use crate::program::NutsConfig;
use crate::Result;
use autobatch_models::Model;

/// Statistics of one iterative NUTS run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IterStats {
    /// Model gradient evaluations.
    pub grads: u64,
    /// Tree leaves built.
    pub leaves: u64,
    /// Trajectories stopped by the divergence guard.
    pub divergences: u64,
}

/// One edge state of the trajectory.
#[derive(Debug, Clone)]
struct Edge {
    q: Tensor,
    p: Tensor,
}

/// Result of building one subtree iteratively (mirrors the recursive
/// `build_tree`'s outputs).
#[derive(Debug)]
pub(crate) struct IterTree {
    pub(crate) q_edge: Tensor,
    pub(crate) p_edge: Tensor,
    pub(crate) qprop: Tensor,
    pub(crate) n: i64,
    pub(crate) s: bool,
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) leaves: u64,
}

/// The hand-rewritten non-recursive sampler.
#[derive(Debug)]
pub struct IterativeNuts<'m> {
    model: &'m dyn Model,
    cfg: NutsConfig,
}

impl<'m> IterativeNuts<'m> {
    /// Create a sampler for `model`.
    pub fn new(model: &'m dyn Model, cfg: NutsConfig) -> Self {
        IterativeNuts { model, cfg }
    }

    /// Run one chain from `q0` (shape `[d]`). RNG draws are keyed by
    /// `(member, counter)` like every other sampler here, but the draw
    /// *order* differs from the recursive implementation (reservoir
    /// proposal sampling instead of pairwise subtree swaps), so chains
    /// are distributionally — not bitwise — equivalent to it.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn run_chain(&self, q0: &Tensor, member: u64) -> Result<(Tensor, IterStats)> {
        let d = self.model.dim();
        let rng = CounterRng::new(self.cfg.seed);
        let mut counter: i64 = 0;
        let mut stats = IterStats::default();
        let mut q = q0.reshape(&[1, d])?;
        for _ in 0..self.cfg.n_trajectories {
            // Momentum + slice variable.
            let p0 = rng.normal_batch_for(&[member], &[counter], &[d]);
            counter += 1;
            let e0 = rng
                .exponential_batch_for(&[member], &[counter], &[])
                .as_f64()?[0];
            counter += 1;
            let joint0 = self.logp(&q, &mut stats)? - 0.5 * p0.dot_last_axis(&p0)?.as_f64()?[0];
            let log_u = joint0 - e0;

            let mut minus = Edge {
                q: q.clone(),
                p: p0.clone(),
            };
            let mut plus = Edge {
                q: q.clone(),
                p: p0,
            };
            let mut n: i64 = 1;
            let mut s = true;
            let mut j = 0i64;
            while s && j < self.cfg.max_depth as i64 {
                let uv = rng.uniform_batch_for(&[member], &[counter], &[]).as_f64()?[0];
                counter += 1;
                let v = if uv < 0.5 { -1.0 } else { 1.0 };
                let edge = if v < 0.0 { minus.clone() } else { plus.clone() };
                let tree = self.build_iterative(
                    &edge.q,
                    &edge.p,
                    log_u,
                    v,
                    j,
                    &rng,
                    member,
                    &mut counter,
                    &mut stats,
                )?;
                if v < 0.0 {
                    minus = Edge {
                        q: tree.q_edge.clone(),
                        p: tree.p_edge.clone(),
                    };
                } else {
                    plus = Edge {
                        q: tree.q_edge.clone(),
                        p: tree.p_edge.clone(),
                    };
                }
                let ua = rng.uniform_batch_for(&[member], &[counter], &[]).as_f64()?[0];
                counter += 1;
                if tree.s && ua * (n as f64) < (tree.n as f64) {
                    q = tree.qprop.clone();
                }
                n += tree.n;
                s = tree.s && no_uturn(&minus.q, &plus.q, &minus.p, &plus.p)?;
                j += 1;
            }
        }
        Ok((q.reshape(&[d])?, stats))
    }

    fn logp(&self, q: &Tensor, stats: &mut IterStats) -> Result<f64> {
        let _ = stats;
        Ok(self.model.logp(q)?.as_f64()?[0])
    }

    fn leapfrog(
        &self,
        q: &Tensor,
        p: &Tensor,
        dt: f64,
        stats: &mut IterStats,
    ) -> Result<(Tensor, Tensor)> {
        let mut q2 = q.clone();
        let mut p2 = p.clone();
        let half = Tensor::scalar(0.5 * dt);
        let full = Tensor::scalar(dt);
        for _ in 0..self.cfg.leapfrog_steps {
            stats.grads += 2;
            let g = self.model.grad(&q2)?;
            p2 = p2.add(&half.mul(&g)?)?;
            q2 = q2.add(&full.mul(&p2)?)?;
            let g = self.model.grad(&q2)?;
            p2 = p2.add(&half.mul(&g)?)?;
        }
        Ok((q2, p2))
    }

    /// Build a depth-`j` subtree in direction `v`, leaf by leaf, with
    /// `O(j)` checkpoint memory instead of recursion.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_iterative(
        &self,
        q0: &Tensor,
        p0: &Tensor,
        log_u: f64,
        v: f64,
        j: i64,
        rng: &CounterRng,
        member: u64,
        counter: &mut i64,
        stats: &mut IterStats,
    ) -> Result<IterTree> {
        let total: u64 = 1 << j;
        let mut checkpoints: Vec<Option<Edge>> = vec![None; (j as usize) + 1];
        let mut cur = Edge {
            q: q0.clone(),
            p: p0.clone(),
        };
        let mut qprop: Option<Tensor> = None;
        let mut n: i64 = 0;
        let mut s = true;
        let mut leaves = 0u64;
        for leaf in 0..total {
            // One leaf = one (multi-step) leapfrog from the current edge.
            let (q1, p1) = self.leapfrog(&cur.q, &cur.p, v * self.cfg.step_size, stats)?;
            cur = Edge { q: q1, p: p1 };
            leaves += 1;
            stats.leaves += 1;
            let joint = self.logp(&cur.q, stats)? - 0.5 * cur.p.dot_last_axis(&cur.p)?.as_f64()?[0];
            if log_u <= joint {
                n += 1;
                // Reservoir sampling: uniform among admissible leaves —
                // distributionally the same proposal as the recursive
                // pairwise swaps.
                let u = rng
                    .uniform_batch_for(&[member], &[*counter], &[])
                    .as_f64()?[0];
                *counter += 1;
                if u * (n as f64) < 1.0 {
                    qprop = Some(cur.q.clone());
                }
            }
            if log_u >= joint + 1000.0 {
                stats.divergences += 1;
                s = false;
                break;
            }
            if leaf % 2 == 0 {
                // Even leaf: left edge of one or more dyadic subtrees.
                let slot = (leaf.count_ones()) as usize;
                checkpoints[slot] = Some(cur.clone());
            } else {
                // Odd leaf: every dyadic subtree whose right edge this is
                // completes now; check each against its saved left edge.
                let mut k = 1u32;
                while (leaf + 1) % (1 << k) == 0 && s {
                    let a = leaf + 1 - (1 << k);
                    let slot = (a.count_ones()) as usize;
                    let start = checkpoints[slot]
                        .as_ref()
                        .expect("checkpoint saved when leaf a was built");
                    // Orient the check by trajectory direction.
                    let ok = if v < 0.0 {
                        no_uturn(&cur.q, &start.q, &cur.p, &start.p)?
                    } else {
                        no_uturn(&start.q, &cur.q, &start.p, &cur.p)?
                    };
                    if !ok {
                        s = false;
                    }
                    k += 1;
                    if k > j as u32 {
                        break;
                    }
                }
                if !s {
                    break;
                }
            }
        }
        Ok(IterTree {
            q_edge: cur.q,
            p_edge: cur.p,
            qprop: qprop.unwrap_or_else(|| q0.clone()),
            n,
            s,
            leaves,
        })
    }
}

fn no_uturn(qm: &Tensor, qp: &Tensor, pm: &Tensor, pp: &Tensor) -> Result<bool> {
    let dq = qp.sub(qm)?;
    let a = dq.dot_last_axis(pm)?.as_f64()?[0];
    let b = dq.dot_last_axis(pp)?.as_f64()?[0];
    Ok(a >= 0.0 && b >= 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_models::{CorrelatedGaussian, StdNormal};
    use autobatch_tensor::DType;

    fn cfg() -> NutsConfig {
        NutsConfig {
            step_size: 0.25,
            n_trajectories: 20,
            max_depth: 6,
            leapfrog_steps: 2,
            seed: 42,
        }
    }

    /// Recursive reference for one subtree (boundaries, count, stop flag
    /// are RNG-free; the proposal is not compared).
    struct RecRef<'a> {
        model: &'a dyn Model,
        cfg: NutsConfig,
        leaves: u64,
    }

    impl RecRef<'_> {
        fn leapfrog(&mut self, q: &Tensor, p: &Tensor, dt: f64) -> (Tensor, Tensor) {
            let mut q2 = q.clone();
            let mut p2 = p.clone();
            let half = Tensor::scalar(0.5 * dt);
            let full = Tensor::scalar(dt);
            for _ in 0..self.cfg.leapfrog_steps {
                let g = self.model.grad(&q2).unwrap();
                p2 = p2.add(&half.mul(&g).unwrap()).unwrap();
                q2 = q2.add(&full.mul(&p2).unwrap()).unwrap();
                let g = self.model.grad(&q2).unwrap();
                p2 = p2.add(&half.mul(&g).unwrap()).unwrap();
            }
            (q2, p2)
        }

        /// Returns (qm, pm, qp, pp, n, s) — edge-ordered along direction v.
        #[allow(clippy::type_complexity)]
        fn build(
            &mut self,
            q: &Tensor,
            p: &Tensor,
            log_u: f64,
            v: f64,
            j: i64,
        ) -> (Tensor, Tensor, Tensor, Tensor, i64, bool) {
            if j == 0 {
                self.leaves += 1;
                let (q1, p1) = self.leapfrog(q, p, v * self.cfg.step_size);
                let joint = self.model.logp(&q1).unwrap().as_f64().unwrap()[0]
                    - 0.5 * p1.dot_last_axis(&p1).unwrap().as_f64().unwrap()[0];
                let n = i64::from(log_u <= joint);
                let s = log_u < joint + 1000.0;
                return (q1.clone(), p1.clone(), q1, p1, n, s);
            }
            let (qm, pm, qp, pp, n1, s1) = self.build(q, p, log_u, v, j - 1);
            if !s1 {
                return (qm, pm, qp, pp, n1, s1);
            }
            // Grow outward: the new subtree starts from the far edge.
            let (qm2, pm2, qp2, pp2, n2, s2) = self.build(&qp, &pp, log_u, v, j - 1);
            let (inner_q, inner_p, outer_q, outer_p) = (qm, pm, qp2.clone(), pp2.clone());
            let _ = (qm2, pm2);
            let ok = if v < 0.0 {
                no_uturn(&outer_q, &inner_q, &outer_p, &inner_p).unwrap()
            } else {
                no_uturn(&inner_q, &outer_q, &inner_p, &outer_p).unwrap()
            };
            (inner_q, inner_p, outer_q, outer_p, n1 + n2, s2 && ok)
        }
    }

    #[test]
    fn iterative_tree_matches_recursive_reference() {
        // Same (q, p, log_u, v, j) → same far edge, admissible count,
        // stop flag, and leaf count, for both directions and several
        // depths and slice levels.
        let model = CorrelatedGaussian::new(6, 0.8);
        let c = cfg();
        let it = IterativeNuts::new(&model, c);
        let rng = CounterRng::new(7);
        let q0 = rng.normal_batch(&[0], &[6]);
        let p0 = rng.normal_batch(&[1], &[6]);
        let base_joint = model.logp(&q0).unwrap().as_f64().unwrap()[0]
            - 0.5 * p0.dot_last_axis(&p0).unwrap().as_f64().unwrap()[0];
        for v in [1.0, -1.0] {
            for j in 0..5i64 {
                for slack in [0.5, 5.0, 50.0] {
                    let log_u = base_joint - slack;
                    let mut stats = IterStats::default();
                    let mut counter = 1000;
                    let tree = it
                        .build_iterative(&q0, &p0, log_u, v, j, &rng, 0, &mut counter, &mut stats)
                        .unwrap();
                    let mut rec = RecRef {
                        model: &model,
                        cfg: c,
                        leaves: 0,
                    };
                    let (_qm, _pm, qp, pp, n, s) = rec.build(&q0, &p0, log_u, v, j);
                    assert_eq!(tree.n, n, "admissible count (v={v}, j={j}, slack={slack})");
                    assert_eq!(tree.s, s, "stop flag (v={v}, j={j}, slack={slack})");
                    if s {
                        // With no early stop the leaf counts and far edges
                        // must agree exactly.
                        assert_eq!(tree.leaves, rec.leaves, "leaves (v={v}, j={j})");
                        assert_eq!(tree.q_edge, qp, "far edge q (v={v}, j={j})");
                        assert_eq!(tree.p_edge, pp, "far edge p (v={v}, j={j})");
                    }
                }
            }
        }
    }

    #[test]
    fn iterative_chain_samples_plausibly() {
        let model = StdNormal::new(2);
        let mut c = cfg();
        c.n_trajectories = 40;
        let it = IterativeNuts::new(&model, c);
        let mut all = Vec::new();
        for m in 0..30u64 {
            let (qf, stats) = it.run_chain(&Tensor::zeros(DType::F64, &[2]), m).unwrap();
            assert!(stats.grads > 0);
            all.extend_from_slice(qf.as_f64().unwrap());
        }
        let mean: f64 = all.iter().sum::<f64>() / all.len() as f64;
        let var: f64 = all.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / all.len() as f64;
        assert!(mean.abs() < 0.5, "mean = {mean}");
        assert!(var > 0.3 && var < 3.0, "var = {var}");
    }

    #[test]
    fn iterative_and_recursive_samplers_agree_statistically() {
        // Different RNG consumption ⇒ different chains, but comparable
        // second moments on the same target.
        use crate::native::NativeNuts;
        let model = StdNormal::new(3);
        let mut c = cfg();
        c.n_trajectories = 30;
        let it = IterativeNuts::new(&model, c);
        let rec = NativeNuts::new(&model, c);
        let chains = 24u64;
        let mut var_it = 0.0;
        let mut var_rec = 0.0;
        for m in 0..chains {
            let q0 = Tensor::zeros(DType::F64, &[3]);
            let (a, _) = it.run_chain(&q0, m).unwrap();
            let (b, _) = rec.run_chain(&q0, m, None).unwrap();
            var_it += a.dot_last_axis(&a).unwrap().as_f64().unwrap()[0];
            var_rec += b.dot_last_axis(&b).unwrap().as_f64().unwrap()[0];
        }
        var_it /= (chains * 3) as f64;
        var_rec /= (chains * 3) as f64;
        assert!((var_it - var_rec).abs() < 1.0, "{var_it} vs {var_rec}");
    }

    #[test]
    fn checkpoint_memory_is_logarithmic() {
        // Structural check on the dyadic indexing: for every odd leaf,
        // the checkpoint of each completing subtree's left edge must
        // still be live (slot untouched since it was written).
        for j in 1..=8u32 {
            let total = 1u64 << j;
            let mut slot_owner: Vec<Option<u64>> = vec![None; j as usize + 1];
            for leaf in 0..total {
                if leaf % 2 == 0 {
                    slot_owner[leaf.count_ones() as usize] = Some(leaf);
                } else {
                    let mut k = 1u32;
                    while k <= j && (leaf + 1) % (1u64 << k) == 0 {
                        let a = leaf + 1 - (1u64 << k);
                        assert_eq!(
                            slot_owner[a.count_ones() as usize],
                            Some(a),
                            "leaf {a} checkpoint alive at completion of [{a}, {leaf}] (j={j})"
                        );
                        k += 1;
                    }
                }
            }
        }
    }
}
