//! # autobatch-nuts
//!
//! The No-U-Turn Sampler — the paper's evaluation workload (§4) — in
//! three forms:
//!
//! - [`program`]: the *recursive single-example* NUTS written in the
//!   autobatch surface language, mechanically batched by the runtimes in
//!   `autobatch-core` (this is the paper's headline artifact);
//! - [`NativeNuts`]: a hand-written recursive Rust implementation, the
//!   "Stan-like" one-chain-at-a-time native baseline of Figure 5, built
//!   to mirror the surface program draw-for-draw so batched and native
//!   chains agree exactly;
//! - [`BatchNuts`]: the compiled batched sampler running whole batches of
//!   chains under either autobatching strategy;
//! - [`IterativeNuts`]: the hand-rewritten *non-recursive* NUTS the
//!   paper's §5 cites as related work — the manual alternative that
//!   autobatching makes unnecessary.
//!
//! Extensions beyond the paper:
//!
//! - [`adapt`]: dual-averaging step-size adaptation (Hoffman & Gelman
//!   Alg. 6) with a warmup driver whose adapted per-chain `(q, ε,
//!   counter)` states feed straight into a batched sampling phase
//!   ([`BatchNuts::run_pc_with`]) — the chains continue their exact RNG
//!   streams inside the batch;
//! - [`multinomial`]: the multinomial proposal variant (Betancourt 2017)
//!   that modern Stan runs, for comparison with the paper's
//!   slice-sampling formulation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

pub mod adapt;
pub mod iterative;
pub mod multinomial;
pub mod native;
pub mod program;
mod sampler;

pub use adapt::{find_reasonable_epsilon, AdaptedChain, AdaptiveNuts, DualAveraging};
pub use iterative::{IterStats, IterativeNuts};
pub use multinomial::{MultinomialNuts, MultinomialStats};
pub use native::{ChainState, NativeNuts, NutsStats, TrajectoryInfo};
pub use program::{nuts_program, nuts_source, NutsConfig};
pub use sampler::BatchNuts;

/// Errors from building or running NUTS samplers.
#[derive(Debug)]
pub enum NutsError {
    /// The embedded surface program failed to compile (a bug here).
    Lang(autobatch_lang::LangError),
    /// A runtime error from an autobatching virtual machine.
    Vm(autobatch_core::VmError),
    /// A tensor kernel error.
    Tensor(autobatch_tensor::TensorError),
    /// A shape violation in user-supplied data.
    Shape(String),
}

impl fmt::Display for NutsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NutsError::Lang(e) => write!(f, "program compilation failed: {e}"),
            NutsError::Vm(e) => write!(f, "runtime error: {e}"),
            NutsError::Tensor(e) => write!(f, "tensor error: {e}"),
            NutsError::Shape(s) => write!(f, "shape error: {s}"),
        }
    }
}

impl std::error::Error for NutsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NutsError::Lang(e) => Some(e),
            NutsError::Vm(e) => Some(e),
            NutsError::Tensor(e) => Some(e),
            NutsError::Shape(_) => None,
        }
    }
}

impl From<autobatch_lang::LangError> for NutsError {
    fn from(e: autobatch_lang::LangError) -> Self {
        NutsError::Lang(e)
    }
}

impl From<autobatch_core::VmError> for NutsError {
    fn from(e: autobatch_core::VmError) -> Self {
        NutsError::Vm(e)
    }
}

impl From<autobatch_tensor::TensorError> for NutsError {
    fn from(e: autobatch_tensor::TensorError) -> Self {
        NutsError::Tensor(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NutsError>;
