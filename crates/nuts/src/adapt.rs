//! Step-size adaptation: dual averaging (Hoffman & Gelman 2014,
//! Algorithm 6) and the reasonable-ε initialization heuristic
//! (Algorithm 4).
//!
//! The paper runs NUTS with a fixed step size; real deployments (Stan,
//! TFP) adapt `ε` during a warmup phase so the trajectory-level
//! acceptance statistic hits a target (0.8 by default). This module
//! provides that warmup as an *extension* of the reproduction, and —
//! because the batched program takes `ε` and the RNG counter as inputs —
//! composes with autobatching: [`AdaptiveNuts::warmup`] adapts each
//! chain natively, then
//! [`BatchNuts::run_pc_with`](crate::BatchNuts::run_pc_with) samples all
//! chains in one batch from the adapted states.

use autobatch_tensor::{CounterRng, Tensor};

use crate::native::{ChainState, NativeNuts, TrajectoryInfo};
use crate::program::NutsConfig;
use crate::Result;
use autobatch_models::Model;

/// Nesterov dual averaging of `log ε` toward a target acceptance
/// statistic (Hoffman & Gelman 2014, Algorithm 6).
///
/// # Examples
///
/// ```
/// use autobatch_nuts::DualAveraging;
///
/// let mut da = DualAveraging::new(1.0, 0.8);
/// // Feed acceptance statistics; ε falls when acceptance is too low.
/// for _ in 0..50 {
///     da.update(0.2);
/// }
/// assert!(da.adapted_step_size() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DualAveraging {
    mu: f64,
    log_eps: f64,
    log_eps_bar: f64,
    h_bar: f64,
    m: u64,
    /// Target mean acceptance statistic `δ`.
    delta: f64,
    /// Adaptation regularization scale (H&G use 0.05).
    gamma: f64,
    /// Iteration offset stabilizing early adaptation (H&G use 10).
    t0: f64,
    /// Step-size averaging decay exponent (H&G use 0.75).
    kappa: f64,
}

impl DualAveraging {
    /// Start adaptation from `eps0` with target acceptance `delta`
    /// (Stan's default is 0.8).
    ///
    /// # Panics
    ///
    /// Panics if `eps0` is not positive and finite, or `delta` is outside
    /// `(0, 1)`.
    pub fn new(eps0: f64, delta: f64) -> DualAveraging {
        assert!(eps0.is_finite() && eps0 > 0.0, "eps0 must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        DualAveraging {
            mu: (10.0 * eps0).ln(),
            log_eps: eps0.ln(),
            log_eps_bar: 0.0,
            h_bar: 0.0,
            m: 0,
            delta,
            gamma: 0.05,
            t0: 10.0,
            kappa: 0.75,
        }
    }

    /// Incorporate one trajectory's mean acceptance statistic and return
    /// the step size to use for the *next* trajectory.
    pub fn update(&mut self, accept_stat: f64) -> f64 {
        let a = accept_stat.clamp(0.0, 1.0);
        self.m += 1;
        let m = self.m as f64;
        let w = 1.0 / (m + self.t0);
        self.h_bar = (1.0 - w) * self.h_bar + w * (self.delta - a);
        self.log_eps = self.mu - (m.sqrt() / self.gamma) * self.h_bar;
        let eta = m.powf(-self.kappa);
        self.log_eps_bar = eta * self.log_eps + (1.0 - eta) * self.log_eps_bar;
        self.log_eps.exp()
    }

    /// The step size a next trajectory should use (the non-averaged
    /// iterate; equals `eps0` before any update).
    pub fn current_step_size(&self) -> f64 {
        self.log_eps.exp()
    }

    /// The averaged step size to freeze for the sampling phase.
    pub fn adapted_step_size(&self) -> f64 {
        if self.m == 0 {
            self.log_eps.exp()
        } else {
            self.log_eps_bar.exp()
        }
    }

    /// Number of updates incorporated so far.
    pub fn iterations(&self) -> u64 {
        self.m
    }

    /// The target acceptance statistic `δ`.
    pub fn target_accept(&self) -> f64 {
        self.delta
    }
}

/// Find an order-of-magnitude-reasonable initial step size by doubling or
/// halving until the one-step leapfrog acceptance probability crosses 1/2
/// (Hoffman & Gelman 2014, Algorithm 4).
///
/// `member` selects the RNG stream for the momentum draw; `seed` matches
/// the sampler's seed so the heuristic is deterministic.
///
/// # Errors
///
/// Propagates tensor errors from the model kernels.
pub fn find_reasonable_epsilon(
    model: &dyn Model,
    q0: &Tensor,
    member: u64,
    seed: u64,
) -> Result<f64> {
    let d = model.dim();
    let q = q0.reshape(&[1, d])?;
    let rng = CounterRng::new(seed);
    // A dedicated counter stream far from the sampling draws.
    let p0 = rng.normal_batch_for(&[member], &[1 << 40], &[d]);
    let joint = |q: &Tensor, p: &Tensor| -> Result<f64> {
        let logp = model.logp(q)?.as_f64()?[0];
        let ke = 0.5 * p.dot_last_axis(p)?.as_f64()?[0];
        Ok(logp - ke)
    };
    let leapfrog = |q: &Tensor, p: &Tensor, eps: f64| -> Result<(Tensor, Tensor)> {
        let half = Tensor::scalar(0.5 * eps);
        let full = Tensor::scalar(eps);
        let g = model.grad(q)?;
        let p1 = p.add(&half.mul(&g)?)?;
        let q1 = q.add(&full.mul(&p1)?)?;
        let g1 = model.grad(&q1)?;
        let p2 = p1.add(&half.mul(&g1)?)?;
        Ok((q1, p2))
    };

    let mut eps = 1.0;
    let j0 = joint(&q, &p0)?;
    let (q1, p1) = leapfrog(&q, &p0, eps)?;
    let mut log_ratio = joint(&q1, &p1)? - j0;
    if !log_ratio.is_finite() {
        log_ratio = f64::NEG_INFINITY;
    }
    // a = +1 doubles while acceptance > 1/2; a = −1 halves while < 1/2.
    let a: f64 = if log_ratio > (0.5f64).ln() { 1.0 } else { -1.0 };
    for _ in 0..64 {
        if a * log_ratio <= -a * (2.0f64).ln() {
            break;
        }
        eps *= (2.0f64).powf(a);
        let (q1, p1) = leapfrog(&q, &p0, eps)?;
        log_ratio = joint(&q1, &p1)? - j0;
        if !log_ratio.is_finite() {
            log_ratio = f64::NEG_INFINITY;
        }
    }
    Ok(eps)
}

/// Outcome of adapting one chain.
#[derive(Debug, Clone)]
pub struct AdaptedChain {
    /// The chain's state after warmup (position + RNG counter), ready to
    /// hand to a sampling phase.
    pub state: ChainState,
    /// The frozen, averaged step size.
    pub step_size: f64,
    /// Mean acceptance statistic per warmup trajectory.
    pub accept_stats: Vec<f64>,
    /// Gradient evaluations spent in warmup.
    pub grads: u64,
}

/// A warmup driver running dual-averaging adaptation over the native
/// sampler, one chain at a time.
///
/// The adapted `(position, ε, RNG counter)` triple can seed either more
/// native sampling ([`NativeNuts::step_trajectory`]) or a *batched*
/// sampling phase via [`BatchNuts::run_pc_with`](crate::BatchNuts::run_pc_with)
/// — the chains continue their exact RNG streams either way.
#[derive(Debug)]
pub struct AdaptiveNuts<'m> {
    sampler: NativeNuts<'m>,
    model: &'m dyn Model,
    cfg: NutsConfig,
    target_accept: f64,
}

impl<'m> AdaptiveNuts<'m> {
    /// Create an adaptive warmup driver with target acceptance `δ`
    /// (Stan's default is 0.8).
    pub fn new(model: &'m dyn Model, cfg: NutsConfig, target_accept: f64) -> AdaptiveNuts<'m> {
        AdaptiveNuts {
            sampler: NativeNuts::new(model, cfg),
            model,
            cfg,
            target_accept,
        }
    }

    /// Run `n_warmup` adaptation trajectories from `q0` (shape `[d]`) as
    /// batch member `member`.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn warmup(&self, q0: &Tensor, member: u64, n_warmup: usize) -> Result<AdaptedChain> {
        let eps0 = find_reasonable_epsilon(self.model, q0, member, self.cfg.seed)?;
        let mut da = DualAveraging::new(eps0, self.target_accept);
        let mut state = self.sampler.init_chain(q0, member)?;
        let mut eps = eps0;
        let mut accept_stats = Vec::with_capacity(n_warmup);
        let mut grads = 0;
        for _ in 0..n_warmup {
            let info: TrajectoryInfo = self.sampler.step_trajectory(&mut state, eps, None)?;
            accept_stats.push(info.accept_mean);
            grads += info.grads;
            eps = da.update(info.accept_mean);
        }
        Ok(AdaptedChain {
            state,
            step_size: da.adapted_step_size(),
            accept_stats,
            grads,
        })
    }

    /// Warm up `z` chains (rows of `q0`, shape `[z, d]`) independently.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn warmup_chains(&self, q0: &Tensor, n_warmup: usize) -> Result<Vec<AdaptedChain>> {
        (0..q0.shape()[0])
            .map(|b| self.warmup(&q0.row(b)?, b as u64, n_warmup))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_models::{CorrelatedGaussian, StdNormal};
    use autobatch_tensor::DType;

    fn cfg() -> NutsConfig {
        NutsConfig {
            step_size: 0.5, // overridden by adaptation
            n_trajectories: 1,
            max_depth: 6,
            leapfrog_steps: 1,
            seed: 7,
        }
    }

    #[test]
    fn dual_averaging_decreases_eps_on_low_acceptance() {
        let mut da = DualAveraging::new(1.0, 0.8);
        for _ in 0..100 {
            da.update(0.05);
        }
        assert!(
            da.adapted_step_size() < 0.05,
            "eps = {}",
            da.adapted_step_size()
        );
    }

    #[test]
    fn dual_averaging_increases_eps_on_high_acceptance() {
        let mut da = DualAveraging::new(0.1, 0.6);
        for _ in 0..100 {
            da.update(1.0);
        }
        assert!(
            da.adapted_step_size() > 0.1,
            "eps = {}",
            da.adapted_step_size()
        );
    }

    #[test]
    fn dual_averaging_finds_fixed_point_of_synthetic_response() {
        // Acceptance falls smoothly with eps: a(ε) = exp(−ε). The
        // adapted ε should satisfy a(ε*) ≈ δ, i.e. ε* ≈ −ln δ.
        let delta = 0.8f64;
        let mut da = DualAveraging::new(1.0, delta);
        let mut eps = 1.0f64;
        for _ in 0..2000 {
            eps = da.update((-eps).exp());
        }
        let expect = -(delta.ln());
        let got = da.adapted_step_size();
        assert!(
            (got - expect).abs() / expect < 0.15,
            "adapted {got}, expected ≈ {expect}"
        );
    }

    #[test]
    fn dual_averaging_validates_arguments() {
        assert!(std::panic::catch_unwind(|| DualAveraging::new(0.0, 0.8)).is_err());
        assert!(std::panic::catch_unwind(|| DualAveraging::new(1.0, 1.5)).is_err());
    }

    #[test]
    fn accessors_report_state() {
        let mut da = DualAveraging::new(0.25, 0.7);
        assert_eq!(da.iterations(), 0);
        assert!((da.current_step_size() - 0.25).abs() < 1e-12);
        assert!((da.adapted_step_size() - 0.25).abs() < 1e-12);
        assert_eq!(da.target_accept(), 0.7);
        da.update(0.9);
        assert_eq!(da.iterations(), 1);
    }

    #[test]
    fn reasonable_epsilon_is_sane_for_std_normal() {
        // For N(0, I) the stable leapfrog step is O(1): the heuristic
        // should land within a few doublings of that.
        let model = StdNormal::new(10);
        let q0 = Tensor::zeros(DType::F64, &[10]);
        let eps = find_reasonable_epsilon(&model, &q0, 0, 7).unwrap();
        assert!((0.125..=8.0).contains(&eps), "eps = {eps}");
    }

    #[test]
    fn reasonable_epsilon_shrinks_for_stiff_targets() {
        // A highly correlated Gaussian has a much smaller stable step
        // than the isotropic one.
        let iso = StdNormal::new(16);
        let stiff = CorrelatedGaussian::new(16, 0.99);
        let q0 = Tensor::zeros(DType::F64, &[16]);
        let e_iso = find_reasonable_epsilon(&iso, &q0, 0, 7).unwrap();
        let e_stiff = find_reasonable_epsilon(&stiff, &q0, 0, 7).unwrap();
        assert!(e_stiff < e_iso, "stiff {e_stiff} vs iso {e_iso}");
    }

    #[test]
    fn warmup_hits_target_acceptance() {
        let model = CorrelatedGaussian::new(8, 0.7);
        let adapter = AdaptiveNuts::new(&model, cfg(), 0.8);
        let q0 = Tensor::zeros(DType::F64, &[8]);
        let adapted = adapter.warmup(&q0, 0, 150).unwrap();
        // The tail of the acceptance series should hover near the target.
        let tail: Vec<f64> = adapted
            .accept_stats
            .iter()
            .rev()
            .take(50)
            .copied()
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 0.8).abs() < 0.17,
            "tail acceptance {mean}, eps {}",
            adapted.step_size
        );
        assert!(adapted.grads > 0);
        assert!(adapted.state.counter() > 0);
    }

    #[test]
    fn warmup_chains_are_independent_and_member_specific() {
        let model = StdNormal::new(4);
        let adapter = AdaptiveNuts::new(&model, cfg(), 0.8);
        let q0 = Tensor::zeros(DType::F64, &[3, 4]);
        let chains = adapter.warmup_chains(&q0, 30).unwrap();
        assert_eq!(chains.len(), 3);
        // Different RNG streams must produce different trajectories.
        let p0 = chains[0].state.position().unwrap();
        let p1 = chains[1].state.position().unwrap();
        assert_ne!(p0, p1);
    }
}
