//! Multinomial NUTS (Betancourt 2017) — the variant modern Stan runs.
//!
//! The paper (and [`NativeNuts`](crate::NativeNuts), and the batched
//! surface program) implements Hoffman & Gelman's original
//! *slice-sampling* NUTS: a slice variable `u` decides which leapfrog
//! states are admissible, and the proposal is drawn uniformly among them.
//! Stan replaced that scheme with *multinomial* sampling over the whole
//! trajectory — each state is weighted by `exp(joint − joint₀)`, inner
//! subtrees sample proposals in proportion to their weight, and the
//! top-level merge is biased toward the freshly built subtree, which
//! empirically improves effective sample size per gradient.
//!
//! This module is an extension beyond the reproduced paper (which
//! predates Stan's switch being relevant to its benchmarks); it exists
//! so the repository's NUTS family matches what a downstream user would
//! expect today, and as a second "single-example program" one could
//! batch. It reuses the same leapfrog, U-turn criterion, divergence
//! guard, and counter-based RNG discipline as the slice variant, so the
//! two are directly comparable.

use autobatch_accel::{LaunchRecord, Trace};
use autobatch_tensor::{CounterRng, Tensor};

use crate::native::TrajectoryInfo;
use crate::program::NutsConfig;
use crate::Result;
use autobatch_models::Model;

/// Statistics of one multinomial-NUTS run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultinomialStats {
    /// Model gradient evaluations.
    pub grads: u64,
    /// Model log-density evaluations.
    pub logps: u64,
    /// Tree leaves built.
    pub leaves: u64,
    /// Trajectories that stopped on the divergence guard.
    pub divergences: u64,
    /// Final tree depth of each trajectory.
    pub depths: Vec<u32>,
    /// Mean acceptance statistic of each trajectory.
    pub accept_stats: Vec<f64>,
}

/// Resumable chain state for the multinomial sampler.
#[derive(Debug, Clone)]
pub struct MultinomialChain {
    q: Tensor,
    member: u64,
    counter: i64,
}

impl MultinomialChain {
    /// The current position, shape `[d]`.
    ///
    /// # Errors
    ///
    /// Propagates tensor reshape errors (cannot happen for well-formed
    /// state).
    pub fn position(&self) -> Result<Tensor> {
        let d = self.q.len();
        Ok(self.q.reshape(&[d])?)
    }

    /// The next RNG counter.
    pub fn counter(&self) -> i64 {
        self.counter
    }
}

/// The multinomial No-U-Turn sampler.
#[derive(Debug)]
pub struct MultinomialNuts<'m> {
    model: &'m dyn Model,
    cfg: NutsConfig,
}

struct Ctx<'a> {
    model: &'a dyn Model,
    cfg: &'a NutsConfig,
    rng: CounterRng,
    member: u64,
    counter: i64,
    stats: MultinomialStats,
    trace: Option<&'a mut Trace>,
    joint0: f64,
}

struct Tree {
    qm: Tensor,
    pm: Tensor,
    qp: Tensor,
    pp: Tensor,
    qprop: Tensor,
    /// `ln Σ exp(joint − joint₀)` over the subtree's leaves.
    log_sum_w: f64,
    s: bool,
    alpha: f64,
    n_alpha: i64,
}

/// `ln(exp(a) + exp(b))` without overflow.
fn log_add_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        f64::NEG_INFINITY
    } else {
        hi + (lo - hi).exp().ln_1p()
    }
}

impl<'m> MultinomialNuts<'m> {
    /// Create a sampler for `model` with the given configuration.
    pub fn new(model: &'m dyn Model, cfg: NutsConfig) -> Self {
        MultinomialNuts { model, cfg }
    }

    /// Run one chain from `q0` (shape `[d]`), identified as batch member
    /// `member` for RNG purposes. Returns the final position and stats.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn run_chain(
        &self,
        q0: &Tensor,
        member: u64,
        trace: Option<&mut Trace>,
    ) -> Result<(Tensor, MultinomialStats)> {
        let d = self.model.dim();
        let mut ctx = Ctx {
            model: self.model,
            cfg: &self.cfg,
            rng: CounterRng::new(self.cfg.seed),
            member,
            counter: 0,
            stats: MultinomialStats::default(),
            trace,
            joint0: 0.0,
        };
        let mut q = q0.reshape(&[1, d])?;
        for _ in 0..self.cfg.n_trajectories {
            q = ctx.trajectory(q, self.cfg.step_size)?;
        }
        let stats = ctx.stats;
        Ok((q.reshape(&[d])?, stats))
    }

    /// Run `z` chains sequentially; `q0` has shape `[z, d]`.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn run_chains(
        &self,
        q0: &Tensor,
        mut trace: Option<&mut Trace>,
    ) -> Result<(Tensor, MultinomialStats)> {
        let z = q0.shape()[0];
        let mut rows = Vec::with_capacity(z);
        let mut total = MultinomialStats::default();
        for b in 0..z {
            let (qf, st) = self.run_chain(&q0.row(b)?, b as u64, trace.as_deref_mut())?;
            rows.push(qf.reshape(&[1, self.model.dim()])?);
            total.grads += st.grads;
            total.logps += st.logps;
            total.leaves += st.leaves;
            total.divergences += st.divergences;
            total.depths.extend(st.depths);
            total.accept_stats.extend(st.accept_stats);
        }
        Ok((Tensor::concat_rows(&rows)?, total))
    }

    /// Start a resumable chain at `q0` (shape `[d]`).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `q0` is not a `[d]` vector.
    pub fn init_chain(&self, q0: &Tensor, member: u64) -> Result<MultinomialChain> {
        let d = self.model.dim();
        Ok(MultinomialChain {
            q: q0.reshape(&[1, d])?,
            member,
            counter: 0,
        })
    }

    /// Advance `state` by one trajectory with step size `eps` (for
    /// step-size adaptation).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn step_trajectory(
        &self,
        state: &mut MultinomialChain,
        eps: f64,
        trace: Option<&mut Trace>,
    ) -> Result<TrajectoryInfo> {
        let mut ctx = Ctx {
            model: self.model,
            cfg: &self.cfg,
            rng: CounterRng::new(self.cfg.seed),
            member: state.member,
            counter: state.counter,
            stats: MultinomialStats::default(),
            trace,
            joint0: 0.0,
        };
        state.q = ctx.trajectory(state.q.clone(), eps)?;
        state.counter = ctx.counter;
        Ok(TrajectoryInfo {
            accept_mean: *ctx.stats.accept_stats.last().expect("one trajectory ran"),
            depth: *ctx.stats.depths.last().expect("one trajectory ran"),
            grads: ctx.stats.grads,
            divergent: ctx.stats.divergences > 0,
        })
    }
}

impl Ctx<'_> {
    fn draw_normal_like(&mut self, template: &Tensor) -> Tensor {
        let elem = &template.shape()[1..];
        let t = self
            .rng
            .normal_batch_for(&[self.member], &[self.counter], elem);
        self.counter += 1;
        t
    }

    fn draw_uniform(&mut self) -> f64 {
        let t = self
            .rng
            .uniform_batch_for(&[self.member], &[self.counter], &[]);
        self.counter += 1;
        t.as_f64().expect("f64 draw")[0]
    }

    fn grad(&mut self, q: &Tensor) -> Result<Tensor> {
        self.stats.grads += 1;
        if let Some(t) = self.trace.as_deref_mut() {
            t.launch(&LaunchRecord::compute("grad", self.model.grad_flops(), 1));
        }
        Ok(self.model.grad(q)?)
    }

    fn logp(&mut self, q: &Tensor) -> Result<f64> {
        self.stats.logps += 1;
        if let Some(t) = self.trace.as_deref_mut() {
            t.launch(&LaunchRecord::compute("logp", self.model.logp_flops(), 1));
        }
        Ok(self.model.logp(q)?.as_f64()?[0])
    }

    fn leapfrog(&mut self, q: &Tensor, p: &Tensor, dt: f64) -> Result<(Tensor, Tensor)> {
        let mut q2 = q.clone();
        let mut p2 = p.clone();
        let half = Tensor::scalar(0.5 * dt);
        let full = Tensor::scalar(dt);
        for _ in 0..self.cfg.leapfrog_steps {
            let g = self.grad(&q2)?;
            p2 = p2.add(&half.mul(&g)?)?;
            q2 = q2.add(&full.mul(&p2)?)?;
            let g = self.grad(&q2)?;
            p2 = p2.add(&half.mul(&g)?)?;
        }
        Ok((q2, p2))
    }

    fn no_uturn(&self, qm: &Tensor, qp: &Tensor, pm: &Tensor, pp: &Tensor) -> Result<bool> {
        let dq = qp.sub(qm)?;
        let a = dq.dot_last_axis(pm)?.as_f64()?[0];
        let b = dq.dot_last_axis(pp)?.as_f64()?[0];
        Ok(a >= 0.0 && b >= 0.0)
    }

    fn build_tree(&mut self, q: &Tensor, p: &Tensor, v: f64, j: i64, eps: f64) -> Result<Tree> {
        if j == 0 {
            self.stats.leaves += 1;
            let (q1, p1) = self.leapfrog(q, p, v * eps)?;
            let joint = self.logp(&q1)? - 0.5 * p1.dot_last_axis(&p1)?.as_f64()?[0];
            let log_w = joint - self.joint0;
            // Stan's divergence guard: the energy error exceeds Δ_max.
            let s = log_w > -1000.0;
            if !s {
                self.stats.divergences += 1;
            }
            return Ok(Tree {
                qm: q1.clone(),
                pm: p1.clone(),
                qp: q1.clone(),
                pp: p1.clone(),
                qprop: q1,
                log_sum_w: log_w,
                s,
                alpha: log_w.exp().min(1.0),
                n_alpha: 1,
            });
        }
        let mut t = self.build_tree(q, p, v, j - 1, eps)?;
        if t.s {
            let sub = if v < 0.0 {
                let sub = self.build_tree(&t.qm.clone(), &t.pm.clone(), v, j - 1, eps)?;
                t.qm = sub.qm.clone();
                t.pm = sub.pm.clone();
                sub
            } else {
                let sub = self.build_tree(&t.qp.clone(), &t.pp.clone(), v, j - 1, eps)?;
                t.qp = sub.qp.clone();
                t.pp = sub.pp.clone();
                sub
            };
            // Inner merge: unbiased multinomial choice between halves.
            let total = log_add_exp(t.log_sum_w, sub.log_sum_w);
            let p_new = (sub.log_sum_w - total).exp();
            if self.draw_uniform() < p_new {
                t.qprop = sub.qprop;
            }
            t.log_sum_w = total;
            t.alpha += sub.alpha;
            t.n_alpha += sub.n_alpha;
            t.s = sub.s && self.no_uturn(&t.qm, &t.qp, &t.pm, &t.pp)?;
        }
        Ok(t)
    }

    fn trajectory(&mut self, q: Tensor, eps: f64) -> Result<Tensor> {
        let mut q_out = q;
        let p0 = self.draw_normal_like(&q_out);
        let joint0 = self.logp(&q_out)? - 0.5 * p0.dot_last_axis(&p0)?.as_f64()?[0];
        self.joint0 = joint0;
        let mut qm = q_out.clone();
        let mut qp = q_out.clone();
        let mut pm = p0.clone();
        let mut pp = p0;
        // The initial point has weight exp(0) = 1.
        let mut log_sum_w = 0.0f64;
        let mut j: i64 = 0;
        let mut s = true;
        let mut alpha = 0.0;
        let mut n_alpha: i64 = 0;
        while s && j < self.cfg.max_depth as i64 {
            let uv = self.draw_uniform();
            let v = if uv < 0.5 { -1.0 } else { 1.0 };
            let sub = if v < 0.0 {
                let sub = self.build_tree(&qm.clone(), &pm.clone(), v, j, eps)?;
                qm = sub.qm.clone();
                pm = sub.pm.clone();
                sub
            } else {
                let sub = self.build_tree(&qp.clone(), &pp.clone(), v, j, eps)?;
                qp = sub.qp.clone();
                pp = sub.pp.clone();
                sub
            };
            alpha += sub.alpha;
            n_alpha += sub.n_alpha;
            if sub.s {
                // Top-level merge is *biased* toward the new subtree:
                // accept with probability min(1, W_new / W_old).
                let p_accept = (sub.log_sum_w - log_sum_w).exp().min(1.0);
                if self.draw_uniform() < p_accept {
                    q_out = sub.qprop;
                }
            }
            log_sum_w = log_add_exp(log_sum_w, sub.log_sum_w);
            s = sub.s && self.no_uturn(&qm, &qp, &pm, &pp)?;
            j += 1;
        }
        self.stats.depths.push(j as u32);
        self.stats.accept_stats.push(if n_alpha > 0 {
            alpha / n_alpha as f64
        } else {
            0.0
        });
        Ok(q_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeNuts;
    use autobatch_models::{CorrelatedGaussian, StdNormal};
    use autobatch_tensor::DType;

    fn cfg() -> NutsConfig {
        NutsConfig {
            step_size: 0.4,
            n_trajectories: 25,
            max_depth: 6,
            leapfrog_steps: 2,
            seed: 3,
        }
    }

    #[test]
    fn log_add_exp_matches_naive_in_range() {
        for (a, b) in [(0.0f64, 0.0f64), (-1.0, 2.0), (5.0, -3.0)] {
            let naive = (a.exp() + b.exp()).ln();
            assert!((log_add_exp(a, b) - naive).abs() < 1e-12);
        }
        assert_eq!(
            log_add_exp(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
        // Stable where naive overflows.
        assert!((log_add_exp(1000.0, 1000.0) - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn chain_moves_and_tracks_stats() {
        let model = StdNormal::new(4);
        let nuts = MultinomialNuts::new(&model, cfg());
        let q0 = Tensor::zeros(DType::F64, &[4]);
        let (qf, st) = nuts.run_chain(&q0, 0, None).unwrap();
        assert_eq!(qf.shape(), &[4]);
        assert!(st.grads > 0);
        assert_eq!(st.depths.len(), 25);
        assert_eq!(st.accept_stats.len(), 25);
        assert!(st.accept_stats.iter().all(|a| (0.0..=1.0).contains(a)));
        assert!(qf.as_f64().unwrap().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn samples_recover_std_normal_moments() {
        let model = StdNormal::new(2);
        let mut c = cfg();
        c.n_trajectories = 30;
        let nuts = MultinomialNuts::new(&model, c);
        let z = 40;
        let q0 = Tensor::zeros(DType::F64, &[z, 2]);
        let (qf, _) = nuts.run_chains(&q0, None).unwrap();
        let v = qf.as_f64().unwrap();
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.5, "mean = {mean}");
        assert!(var > 0.3 && var < 3.0, "var = {var}");
    }

    #[test]
    fn reproducible_and_member_dependent() {
        let model = CorrelatedGaussian::new(4, 0.5);
        let nuts = MultinomialNuts::new(&model, cfg());
        let q0 = Tensor::zeros(DType::F64, &[4]);
        let (a, _) = nuts.run_chain(&q0, 0, None).unwrap();
        let (b, _) = nuts.run_chain(&q0, 0, None).unwrap();
        let (c, _) = nuts.run_chain(&q0, 1, None).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn comparable_spread_with_slice_variant() {
        // Both variants target the same distribution; their sample
        // variances across chains should be in the same ballpark.
        let model = StdNormal::new(3);
        let mut c = cfg();
        c.n_trajectories = 25;
        let z = 30;
        let q0 = Tensor::zeros(DType::F64, &[z, 3]);
        let (qm, _) = MultinomialNuts::new(&model, c)
            .run_chains(&q0, None)
            .unwrap();
        let (qs, _) = NativeNuts::new(&model, c).run_chains(&q0, None).unwrap();
        let var = |t: &Tensor| {
            let v = t.as_f64().unwrap();
            let m: f64 = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        let (vm, vs) = (var(&qm), var(&qs));
        assert!(
            vm / vs < 4.0 && vs / vm < 4.0,
            "multinomial {vm} vs slice {vs}"
        );
    }

    #[test]
    fn adapts_with_dual_averaging() {
        use crate::adapt::DualAveraging;
        let model = CorrelatedGaussian::new(6, 0.6);
        let mut c = cfg();
        c.max_depth = 6;
        let nuts = MultinomialNuts::new(&model, c);
        let mut state = nuts
            .init_chain(&Tensor::zeros(DType::F64, &[6]), 0)
            .unwrap();
        let mut da = DualAveraging::new(1.0, 0.8);
        let mut eps = 1.0;
        for _ in 0..120 {
            let info = nuts.step_trajectory(&mut state, eps, None).unwrap();
            eps = da.update(info.accept_mean);
        }
        // Sanity: adaptation settled on a usable step size.
        let adapted = da.adapted_step_size();
        assert!(adapted > 1e-4 && adapted < 10.0, "eps = {adapted}");
        assert!(state.counter() > 0);
        assert_eq!(state.position().unwrap().shape(), &[6]);
    }

    #[test]
    fn divergence_guard_fires_on_huge_steps() {
        let model = CorrelatedGaussian::new(8, 0.95);
        let mut c = cfg();
        c.step_size = 1e6; // absurd step: immediate divergence
        c.n_trajectories = 3;
        let nuts = MultinomialNuts::new(&model, c);
        let q0 = Tensor::full(&[8], 0.5);
        let (_, st) = nuts.run_chain(&q0, 0, None).unwrap();
        assert!(st.divergences > 0);
    }
}
