//! A hand-written recursive NUTS in plain Rust — the "well-optimized
//! native scalar code, one chain at a time" baseline that plays Stan's
//! role in the paper's Figure 5.
//!
//! The implementation deliberately mirrors the surface-language program
//! of [`crate::program`] operation for operation and draw for draw
//! (same counter-based RNG stream), so a single native chain and batch
//! member `b` of an autobatched run produce *identical* samples — the
//! strongest possible cross-validation of the batching runtimes.

use autobatch_accel::{LaunchRecord, Trace};
use autobatch_tensor::{CounterRng, Tensor};

use crate::program::NutsConfig;
use crate::Result;
use autobatch_models::Model;

/// Statistics of one native NUTS run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NutsStats {
    /// Model gradient evaluations.
    pub grads: u64,
    /// Model log-density evaluations.
    pub logps: u64,
    /// Tree leaves built.
    pub leaves: u64,
    /// Trajectories that stopped on the divergence guard.
    pub divergences: u64,
    /// Final tree depth of each trajectory.
    pub depths: Vec<u32>,
    /// Mean Metropolis acceptance statistic of each trajectory (the
    /// `α/n_α` of Hoffman & Gelman Algorithm 6, driving dual-averaging
    /// step-size adaptation).
    pub accept_stats: Vec<f64>,
}

/// The native recursive sampler.
#[derive(Debug)]
pub struct NativeNuts<'m> {
    model: &'m dyn Model,
    cfg: NutsConfig,
}

struct Ctx<'a> {
    model: &'a dyn Model,
    cfg: &'a NutsConfig,
    rng: CounterRng,
    member: u64,
    counter: i64,
    stats: NutsStats,
    trace: Option<&'a mut Trace>,
    /// Initial Hamiltonian of the current trajectory, the reference point
    /// for acceptance statistics.
    joint0: f64,
}

struct Tree {
    qm: Tensor,
    pm: Tensor,
    qp: Tensor,
    pp: Tensor,
    qprop: Tensor,
    n: i64,
    s: bool,
    /// Accumulated `min(1, exp(joint − joint0))` over leaves.
    alpha: f64,
    /// Number of leaves contributing to `alpha`.
    n_alpha: i64,
}

/// Summary of one trajectory taken via [`NativeNuts::step_trajectory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryInfo {
    /// Mean acceptance statistic `α/n_α` (Hoffman & Gelman Alg. 6).
    pub accept_mean: f64,
    /// Final tree depth.
    pub depth: u32,
    /// Gradient evaluations consumed.
    pub grads: u64,
    /// Whether the trajectory stopped on the divergence guard.
    pub divergent: bool,
}

/// Resumable per-chain state for trajectory-at-a-time driving (used by
/// step-size adaptation, which changes `ε` between trajectories).
#[derive(Debug, Clone)]
pub struct ChainState {
    /// Current position, shape `[1, d]`.
    q: Tensor,
    /// Batch-member id (RNG stream selector).
    member: u64,
    /// Next RNG counter (continues the draw sequence across calls).
    counter: i64,
}

impl ChainState {
    /// The current position, shape `[d]`.
    ///
    /// # Errors
    ///
    /// Propagates tensor reshape errors (cannot happen for well-formed
    /// state).
    pub fn position(&self) -> Result<Tensor> {
        let d = self.q.len();
        Ok(self.q.reshape(&[d])?)
    }

    /// The batch-member id of this chain.
    pub fn member(&self) -> u64 {
        self.member
    }

    /// The next RNG counter (how many draws the chain has consumed).
    pub fn counter(&self) -> i64 {
        self.counter
    }
}

impl<'m> NativeNuts<'m> {
    /// Create a sampler for `model` with the given configuration.
    pub fn new(model: &'m dyn Model, cfg: NutsConfig) -> Self {
        NativeNuts { model, cfg }
    }

    /// Run one chain from `q0` (shape `[d]`), identified as batch member
    /// `member` for RNG purposes. Returns the final position and stats.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn run_chain(
        &self,
        q0: &Tensor,
        member: u64,
        trace: Option<&mut Trace>,
    ) -> Result<(Tensor, NutsStats)> {
        let d = self.model.dim();
        let mut ctx = Ctx {
            model: self.model,
            cfg: &self.cfg,
            rng: CounterRng::new(self.cfg.seed),
            member,
            counter: 0,
            stats: NutsStats::default(),
            trace,
            joint0: 0.0,
        };
        let mut q = q0.reshape(&[1, d])?;
        for _ in 0..self.cfg.n_trajectories {
            q = ctx.trajectory(q, self.cfg.step_size)?;
        }
        let stats = ctx.stats;
        Ok((q.reshape(&[d])?, stats))
    }

    /// Start a resumable chain at `q0` (shape `[d]`), identified as batch
    /// member `member` for RNG purposes.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `q0` is not a `[d]` vector.
    pub fn init_chain(&self, q0: &Tensor, member: u64) -> Result<ChainState> {
        let d = self.model.dim();
        Ok(ChainState {
            q: q0.reshape(&[1, d])?,
            member,
            counter: 0,
        })
    }

    /// Advance `state` by one NUTS trajectory with step size `eps`,
    /// continuing the chain's RNG stream. Used by step-size adaptation,
    /// which varies `eps` between trajectories; with `eps` fixed at the
    /// configured step size the draw sequence is identical to
    /// [`NativeNuts::run_chain`].
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn step_trajectory(
        &self,
        state: &mut ChainState,
        eps: f64,
        trace: Option<&mut Trace>,
    ) -> Result<TrajectoryInfo> {
        let mut ctx = Ctx {
            model: self.model,
            cfg: &self.cfg,
            rng: CounterRng::new(self.cfg.seed),
            member: state.member,
            counter: state.counter,
            stats: NutsStats::default(),
            trace,
            joint0: 0.0,
        };
        state.q = ctx.trajectory(state.q.clone(), eps)?;
        state.counter = ctx.counter;
        Ok(TrajectoryInfo {
            accept_mean: *ctx.stats.accept_stats.last().expect("one trajectory ran"),
            depth: *ctx.stats.depths.last().expect("one trajectory ran"),
            grads: ctx.stats.grads,
            divergent: ctx.stats.divergences > 0,
        })
    }

    /// Run `z` chains sequentially (the baseline processes one chain at a
    /// time). `q0` has shape `[z, d]`; returns final positions `[z, d]`
    /// and merged stats.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the model kernels.
    pub fn run_chains(
        &self,
        q0: &Tensor,
        mut trace: Option<&mut Trace>,
    ) -> Result<(Tensor, NutsStats)> {
        let z = q0.shape()[0];
        let mut rows = Vec::with_capacity(z);
        let mut total = NutsStats::default();
        for b in 0..z {
            let (qf, st) = self.run_chain(&q0.row(b)?, b as u64, trace.as_deref_mut())?;
            rows.push(qf.reshape(&[1, self.model.dim()])?);
            total.grads += st.grads;
            total.logps += st.logps;
            total.leaves += st.leaves;
            total.divergences += st.divergences;
            total.depths.extend(st.depths);
        }
        Ok((Tensor::concat_rows(&rows)?, total))
    }
}

impl Ctx<'_> {
    // ---- RNG draws, mirroring the VM's counter discipline exactly -----

    fn draw_normal_like(&mut self, template: &Tensor) -> Tensor {
        let elem = &template.shape()[1..];
        let t = self
            .rng
            .normal_batch_for(&[self.member], &[self.counter], elem);
        self.counter += 1;
        t
    }

    fn draw_exponential(&mut self) -> f64 {
        let t = self
            .rng
            .exponential_batch_for(&[self.member], &[self.counter], &[]);
        self.counter += 1;
        t.as_f64().expect("f64 draw")[0]
    }

    fn draw_uniform(&mut self) -> f64 {
        let t = self
            .rng
            .uniform_batch_for(&[self.member], &[self.counter], &[]);
        self.counter += 1;
        t.as_f64().expect("f64 draw")[0]
    }

    // ---- model kernels with pricing ------------------------------------

    fn grad(&mut self, q: &Tensor) -> Result<Tensor> {
        self.stats.grads += 1;
        if let Some(t) = self.trace.as_deref_mut() {
            t.launch(&LaunchRecord::compute("grad", self.model.grad_flops(), 1));
        }
        Ok(self.model.grad(q)?)
    }

    fn logp(&mut self, q: &Tensor) -> Result<f64> {
        self.stats.logps += 1;
        if let Some(t) = self.trace.as_deref_mut() {
            t.launch(&LaunchRecord::compute("logp", self.model.logp_flops(), 1));
        }
        Ok(self.model.logp(q)?.as_f64()?[0])
    }

    fn record_axpy(&mut self) {
        if let Some(t) = self.trace.as_deref_mut() {
            let d = self.model.dim() as f64;
            t.launch(&LaunchRecord::compute("axpy", 6.0 * d, 1));
        }
    }

    // ---- the algorithm, mirroring program.rs ---------------------------

    fn leapfrog(&mut self, q: &Tensor, p: &Tensor, dt: f64) -> Result<(Tensor, Tensor)> {
        let mut q2 = q.clone();
        let mut p2 = p.clone();
        let half = Tensor::scalar(0.5 * dt);
        let full = Tensor::scalar(dt);
        for _ in 0..self.cfg.leapfrog_steps {
            let g = self.grad(&q2)?;
            p2 = p2.add(&half.mul(&g)?)?;
            q2 = q2.add(&full.mul(&p2)?)?;
            let g = self.grad(&q2)?;
            p2 = p2.add(&half.mul(&g)?)?;
            self.record_axpy();
        }
        Ok((q2, p2))
    }

    fn no_uturn(&self, qm: &Tensor, qp: &Tensor, pm: &Tensor, pp: &Tensor) -> Result<bool> {
        let dq = qp.sub(qm)?;
        let a = dq.dot_last_axis(pm)?.as_f64()?[0];
        let b = dq.dot_last_axis(pp)?.as_f64()?[0];
        Ok(a >= 0.0 && b >= 0.0)
    }

    fn build_tree(
        &mut self,
        q: &Tensor,
        p: &Tensor,
        log_u: f64,
        v: f64,
        j: i64,
        eps: f64,
    ) -> Result<Tree> {
        if j == 0 {
            self.stats.leaves += 1;
            let (q1, p1) = self.leapfrog(q, p, v * eps)?;
            let joint = self.logp(&q1)? - 0.5 * p1.dot_last_axis(&p1)?.as_f64()?[0];
            let n = i64::from(log_u <= joint);
            let s = log_u < joint + 1000.0;
            if !s {
                self.stats.divergences += 1;
            }
            return Ok(Tree {
                qm: q1.clone(),
                pm: p1.clone(),
                qp: q1.clone(),
                pp: p1.clone(),
                qprop: q1,
                n,
                s,
                alpha: (joint - self.joint0).exp().min(1.0),
                n_alpha: 1,
            });
        }
        let mut t = self.build_tree(q, p, log_u, v, j - 1, eps)?;
        if t.s {
            let (qprop2, n2, s2);
            if v < 0.0 {
                let sub = self.build_tree(&t.qm.clone(), &t.pm.clone(), log_u, v, j - 1, eps)?;
                t.qm = sub.qm;
                t.pm = sub.pm;
                qprop2 = sub.qprop;
                n2 = sub.n;
                s2 = sub.s;
                t.alpha += sub.alpha;
                t.n_alpha += sub.n_alpha;
            } else {
                let sub = self.build_tree(&t.qp.clone(), &t.pp.clone(), log_u, v, j - 1, eps)?;
                t.qp = sub.qp;
                t.pp = sub.pp;
                qprop2 = sub.qprop;
                n2 = sub.n;
                s2 = sub.s;
                t.alpha += sub.alpha;
                t.n_alpha += sub.n_alpha;
            }
            let usel = self.draw_uniform();
            let ntot = (t.n + n2) as f64;
            if ntot > 0.0 && usel * ntot < n2 as f64 {
                t.qprop = qprop2;
            }
            t.s = s2 && self.no_uturn(&t.qm, &t.qp, &t.pm, &t.pp)?;
            t.n += n2;
        }
        Ok(t)
    }

    fn trajectory(&mut self, q: Tensor, eps: f64) -> Result<Tensor> {
        let mut q_out = q;
        let p0 = self.draw_normal_like(&q_out);
        let e0 = self.draw_exponential();
        let joint0 = self.logp(&q_out)? - 0.5 * p0.dot_last_axis(&p0)?.as_f64()?[0];
        self.joint0 = joint0;
        let log_u = joint0 - e0;
        let mut qm = q_out.clone();
        let mut qp = q_out.clone();
        let mut pm = p0.clone();
        let mut pp = p0;
        let mut j: i64 = 0;
        let mut n: i64 = 1;
        let mut s = true;
        let mut alpha = 0.0;
        let mut n_alpha: i64 = 0;
        while s && j < self.cfg.max_depth as i64 {
            let uv = self.draw_uniform();
            let v = if uv < 0.5 { -1.0 } else { 1.0 };
            let (qprop, n2, s2);
            if v < 0.0 {
                let sub = self.build_tree(&qm.clone(), &pm.clone(), log_u, v, j, eps)?;
                qm = sub.qm;
                pm = sub.pm;
                qprop = sub.qprop;
                n2 = sub.n;
                s2 = sub.s;
                alpha += sub.alpha;
                n_alpha += sub.n_alpha;
            } else {
                let sub = self.build_tree(&qp.clone(), &pp.clone(), log_u, v, j, eps)?;
                qp = sub.qp;
                pp = sub.pp;
                qprop = sub.qprop;
                n2 = sub.n;
                s2 = sub.s;
                alpha += sub.alpha;
                n_alpha += sub.n_alpha;
            }
            let ua = self.draw_uniform();
            if s2 && ua * (n as f64) < (n2 as f64) {
                q_out = qprop;
            }
            n += n2;
            s = s2 && self.no_uturn(&qm, &qp, &pm, &pp)?;
            j += 1;
        }
        self.stats.depths.push(j as u32);
        self.stats.accept_stats.push(if n_alpha > 0 {
            alpha / n_alpha as f64
        } else {
            0.0
        });
        Ok(q_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_models::{CorrelatedGaussian, StdNormal};
    use autobatch_tensor::DType;

    fn cfg() -> NutsConfig {
        NutsConfig {
            step_size: 0.25,
            n_trajectories: 20,
            max_depth: 6,
            leapfrog_steps: 2,
            seed: 42,
        }
    }

    #[test]
    fn chain_moves_and_counts_gradients() {
        let model = StdNormal::new(4);
        let nuts = NativeNuts::new(&model, cfg());
        let q0 = Tensor::zeros(DType::F64, &[4]);
        let (qf, st) = nuts.run_chain(&q0, 0, None).unwrap();
        assert_eq!(qf.shape(), &[4]);
        assert!(st.grads > 0);
        assert_eq!(st.grads, st.leaves * 2 * 2, "2 grads per leapfrog step");
        assert_eq!(st.depths.len(), 20);
        // The chain must actually move.
        assert!(qf.as_f64().unwrap().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn samples_have_plausible_spread_on_std_normal() {
        // Loose statistical sanity: on N(0, I) the per-coordinate sample
        // variance across many chains should be near 1.
        let model = StdNormal::new(2);
        let mut c = cfg();
        c.n_trajectories = 30;
        let nuts = NativeNuts::new(&model, c);
        let z = 40;
        let q0 = Tensor::zeros(DType::F64, &[z, 2]);
        let (qf, _) = nuts.run_chains(&q0, None).unwrap();
        let v = qf.as_f64().unwrap();
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.5, "mean = {mean}");
        assert!(var > 0.3 && var < 3.0, "var = {var}");
    }

    #[test]
    fn chains_are_reproducible_and_member_dependent() {
        let model = CorrelatedGaussian::new(4, 0.5);
        let nuts = NativeNuts::new(&model, cfg());
        let q0 = Tensor::zeros(DType::F64, &[4]);
        let (a, _) = nuts.run_chain(&q0, 0, None).unwrap();
        let (b, _) = nuts.run_chain(&q0, 0, None).unwrap();
        let (c, _) = nuts.run_chain(&q0, 1, None).unwrap();
        assert_eq!(a, b, "same member reproduces");
        assert_ne!(a, c, "different members diverge");
    }

    #[test]
    fn trace_prices_gradients() {
        let model = StdNormal::new(3);
        let nuts = NativeNuts::new(&model, cfg());
        let mut tr = Trace::new(autobatch_accel::Backend::native_cpu());
        let q0 = Tensor::zeros(DType::F64, &[3]);
        let (_, st) = nuts.run_chain(&q0, 0, Some(&mut tr)).unwrap();
        assert_eq!(tr.kernel_stats("grad").unwrap().launches, st.grads);
        assert!(tr.sim_time() > 0.0);
    }

    #[test]
    fn trajectory_depths_vary() {
        // On a correlated target the chosen tree depths should not all
        // be identical — that variation is what Figure 6 is about.
        let model = CorrelatedGaussian::new(16, 0.9);
        let mut c = cfg();
        c.n_trajectories = 30;
        let nuts = NativeNuts::new(&model, c);
        let q0 = Tensor::full(&[16], 1.0);
        let (_, st) = nuts.run_chain(&q0, 3, None).unwrap();
        let min = st.depths.iter().min().unwrap();
        let max = st.depths.iter().max().unwrap();
        assert!(max > min, "depths = {:?}", st.depths);
    }
}
