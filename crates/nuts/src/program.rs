//! The No-U-Turn Sampler written in the autobatch surface language.
//!
//! This is the artifact the whole paper is about: the *recursive*,
//! single-chain NUTS of Hoffman & Gelman (Algorithm 3, the efficient
//! slice-sampling variant), written as ordinary imperative code and then
//! mechanically batched by the autobatching transformations. Following
//! the paper's §4.1 experimental setup, each leaf of the NUTS tree takes
//! a configurable number of leapfrog steps (default 4) "to better
//! amortize the control overhead".
//!
//! The program threads an explicit counter-based RNG variable through all
//! control flow (including the recursion), so draws are reproducible and
//! identical between batched and single-chain execution.

use autobatch_ir::lsab;
use autobatch_lang::{compile, LangError};

/// Configuration of the NUTS program and its drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NutsConfig {
    /// Leapfrog step size.
    pub step_size: f64,
    /// Number of NUTS trajectories (outer iterations).
    pub n_trajectories: usize,
    /// Maximum tree depth per trajectory.
    pub max_depth: usize,
    /// Leapfrog steps per tree leaf (paper §4.1 uses 4).
    pub leapfrog_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NutsConfig {
    fn default() -> NutsConfig {
        NutsConfig {
            step_size: 0.1,
            n_trajectories: 10,
            max_depth: 8,
            leapfrog_steps: 4,
            seed: 0,
        }
    }
}

/// The NUTS source text, with the per-leaf leapfrog step count baked in
/// as a compile-time constant (the paper's §4.1 modification).
pub fn nuts_source(leapfrog_steps: usize) -> String {
    format!(
        r#"
// The No-U-Turn Sampler (Hoffman & Gelman 2014, Algorithm 3),
// single-example form. `grad`/`logp` are the model's kernels.
extern grad(vec) -> (vec);
extern logp(vec) -> (float);

// One tree leaf: {leapfrog_steps} leapfrog steps of size dt (paper's
// amortization modification; dt carries the trajectory direction sign).
fn leapfrog(q: vec, p: vec, dt: float) -> (q2: vec, p2: vec) {{
    q2 = q;
    p2 = p;
    let i = 0;
    while i < {leapfrog_steps} {{
        p2 = p2 + (0.5 * dt) * grad(q2);
        q2 = q2 + dt * p2;
        p2 = p2 + (0.5 * dt) * grad(q2);
        i = i + 1;
    }}
}}

// True while the subtrajectory has NOT made a U-turn.
fn no_uturn(qm: vec, qp: vec, pm: vec, pp: vec) -> (ok: bool) {{
    let dq = qp - qm;
    ok = dot(dq, pm) >= 0.0 && dot(dq, pp) >= 0.0;
}}

// Recursively build a balanced tree of 2^j leaves in direction v.
// Returns the leftmost/rightmost states, a proposal drawn uniformly
// from the slice-admissible leaves, the admissible count n, the
// continue flag s, and the threaded RNG counter.
fn build_tree(q: vec, p: vec, log_u: float, v: float, j: int, eps: float, rng: int)
    -> (qm: vec, pm: vec, qp: vec, pp: vec, qprop: vec, n: int, s: bool, rng_out: int) {{
    if j == 0 {{
        // Base case: one leaf.
        let (q1, p1) = leapfrog(q, p, v * eps);
        let joint = logp(q1) - 0.5 * dot(p1, p1);
        qm = q1;
        pm = p1;
        qp = q1;
        pp = p1;
        qprop = q1;
        n = int(log_u <= joint);
        s = log_u < joint + 1000.0;
        rng_out = rng;
    }} else {{
        // Recursion: build the left half...
        let (qm1, pm1, qp1, pp1, qpa, n1, s1, rng1) =
            build_tree(q, p, log_u, v, j - 1, eps, rng);
        qm = qm1;
        pm = pm1;
        qp = qp1;
        pp = pp1;
        qprop = qpa;
        n = n1;
        s = s1;
        rng_out = rng1;
        if s1 {{
            // ...then the right half, growing outward in direction v.
            let n2 = 0;
            let s2 = false;
            let qprop2 = qprop;
            if v < 0.0 {{
                let (qm2, pm2, qpx, ppx, qpb, nb, sb, rng2) =
                    build_tree(qm, pm, log_u, v, j - 1, eps, rng_out);
                qm = qm2;
                pm = pm2;
                qprop2 = qpb;
                n2 = nb;
                s2 = sb;
                rng_out = rng2;
            }} else {{
                let (qmx, pmx, qp2, pp2, qpc, nc, sc, rng3) =
                    build_tree(qp, pp, log_u, v, j - 1, eps, rng_out);
                qp = qp2;
                pp = pp2;
                qprop2 = qpc;
                n2 = nc;
                s2 = sc;
                rng_out = rng3;
            }}
            // Swap the proposal in with probability n2 / (n + n2).
            let (usel, rng4) = uniform(rng_out);
            rng_out = rng4;
            let ntot = float(n + n2);
            if ntot > 0.0 && usel * ntot < float(n2) {{
                qprop = qprop2;
            }}
            s = s2 && no_uturn(qm, qp, pm, pp);
            n = n + n2;
        }}
    }}
}}

// Run n_traj NUTS trajectories from q0.
fn nuts_chain(q0: vec, eps: float, n_traj: int, max_depth: int, rng: int)
    -> (q_out: vec, rng_out: int) {{
    q_out = q0;
    rng_out = rng;
    let t = 0;
    while t < n_traj {{
        // Fresh momentum and slice variable.
        let (p0, r1) = normal_like(rng_out, q_out);
        let (e0, r2) = exponential(r1);
        rng_out = r2;
        let joint0 = logp(q_out) - 0.5 * dot(p0, p0);
        let log_u = joint0 - e0;
        // Trajectory state.
        let qm = q_out;
        let qp = q_out;
        let pm = p0;
        let pp = p0;
        let j = 0;
        let n = 1;
        let s = true;
        while s && j < max_depth {{
            // Choose a direction and double the tree.
            let (uv, r3) = uniform(rng_out);
            rng_out = r3;
            let v = select(uv < 0.5, -1.0, 1.0);
            let n2 = 0;
            let s2 = false;
            let qprop = q_out;
            if v < 0.0 {{
                let (qm2, pm2, qpx, ppx, qpr, nb, sb, r4) =
                    build_tree(qm, pm, log_u, v, j, eps, rng_out);
                qm = qm2;
                pm = pm2;
                qprop = qpr;
                n2 = nb;
                s2 = sb;
                rng_out = r4;
            }} else {{
                let (qmx, pmx, qp2, pp2, qpr2, nc, sc, r5) =
                    build_tree(qp, pp, log_u, v, j, eps, rng_out);
                qp = qp2;
                pp = pp2;
                qprop = qpr2;
                n2 = nc;
                s2 = sc;
                rng_out = r5;
            }}
            // Accept the doubled tree's proposal w.p. min(1, n2/n).
            let (ua, r6) = uniform(rng_out);
            rng_out = r6;
            if s2 && ua * float(n) < float(n2) {{
                q_out = qprop;
            }}
            n = n + n2;
            s = s2 && no_uturn(qm, qp, pm, pp);
            j = j + 1;
        }}
        t = t + 1;
    }}
}}
"#
    )
}

/// Compile the NUTS program (entry: `nuts_chain`).
///
/// # Errors
///
/// Returns a [`LangError`] only if the embedded source is broken — which
/// the test suite rules out.
pub fn nuts_program(leapfrog_steps: usize) -> Result<lsab::Program, LangError> {
    compile(&nuts_source(leapfrog_steps), "nuts_chain")
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_ir::analysis::CallGraph;
    use autobatch_ir::FuncId;

    #[test]
    fn nuts_source_compiles_and_validates() {
        let p = nuts_program(4).unwrap();
        p.validate().unwrap();
        assert_eq!(p.funcs.len(), 4);
        let (entry_id, entry) = p.func_by_name("nuts_chain").unwrap();
        assert_eq!(entry_id, p.entry);
        assert_eq!(entry.params.len(), 5);
        assert_eq!(entry.outputs.len(), 2);
    }

    #[test]
    fn build_tree_is_the_only_recursive_function() {
        let p = nuts_program(4).unwrap();
        let cg = CallGraph::new(&p);
        for (i, f) in p.funcs.iter().enumerate() {
            let expect = f.name == "build_tree";
            assert_eq!(cg.is_recursive_func(FuncId(i)), expect, "{}", f.name);
        }
    }

    #[test]
    fn nuts_lowers_to_pc_form() {
        let p = nuts_program(4).unwrap();
        let (pc, stats) =
            autobatch_core::lower(&p, autobatch_core::LoweringOptions::default()).unwrap();
        pc.validate().unwrap();
        // The recursive build_tree forces stacked variables; the
        // non-recursive helpers contribute registers.
        assert!(stats.stacked_vars > 0, "{stats:?}");
        assert!(stats.register_vars > 0, "{stats:?}");
        assert!(stats.pushes > 0);
    }

    #[test]
    fn leapfrog_steps_are_baked_in() {
        let s1 = nuts_source(1);
        let s4 = nuts_source(4);
        assert!(s1.contains("while i < 1"));
        assert!(s4.contains("while i < 4"));
        nuts_program(1).unwrap();
    }
}
