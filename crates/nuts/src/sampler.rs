//! Batched NUTS: compiles the surface program once and runs whole
//! batches of chains under either autobatching runtime.

use std::sync::Arc;

use autobatch_accel::Trace;
use autobatch_core::{
    lower, DynamicVm, ExecOptions, KernelRegistry, LocalStaticVm, LoweringOptions, LoweringStats,
    PcVm,
};
use autobatch_ir::{lsab, pcab};
use autobatch_models::{model_registry, Model};
use autobatch_tensor::{DType, Tensor};

use crate::program::{nuts_program, NutsConfig};
use crate::{NutsError, Result};

/// A compiled, batched No-U-Turn sampler over a [`Model`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use autobatch_nuts::{BatchNuts, NutsConfig};
/// use autobatch_models::StdNormal;
/// use autobatch_tensor::{DType, Tensor};
///
/// let cfg = NutsConfig { n_trajectories: 3, ..NutsConfig::default() };
/// let nuts = BatchNuts::new(Arc::new(StdNormal::new(2)), cfg)?;
/// let q0 = Tensor::zeros(DType::F64, &[4, 2]); // 4 chains
/// let samples = nuts.run_pc(&q0, None)?;
/// assert_eq!(samples.shape(), &[4, 2]);
/// # Ok::<(), autobatch_nuts::NutsError>(())
/// ```
#[derive(Debug)]
pub struct BatchNuts {
    program: lsab::Program,
    lowered: pcab::Program,
    stats: LoweringStats,
    registry: KernelRegistry,
    cfg: NutsConfig,
    dim: usize,
}

impl BatchNuts {
    /// Compile the sampler for `model`.
    ///
    /// # Errors
    ///
    /// Returns an error if compilation or lowering fails (a bug in this
    /// crate's embedded program rather than user error).
    pub fn new(model: Arc<dyn Model>, cfg: NutsConfig) -> Result<BatchNuts> {
        let dim = model.dim();
        let program = nuts_program(cfg.leapfrog_steps)?;
        let (lowered, stats) = lower(&program, LoweringOptions::default())?;
        Ok(BatchNuts {
            program,
            lowered,
            stats,
            registry: model_registry(model),
            cfg,
            dim,
        })
    }

    /// The single-example source program (lsab form).
    pub fn program(&self) -> &lsab::Program {
        &self.program
    }

    /// The merged, stack-explicit program (pcab form).
    pub fn lowered(&self) -> &pcab::Program {
        &self.lowered
    }

    /// Lowering statistics (stack classification, push/pop counts).
    pub fn lowering_stats(&self) -> LoweringStats {
        self.stats
    }

    /// The sampler configuration.
    pub fn config(&self) -> NutsConfig {
        self.cfg
    }

    /// The model dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The kernel registry binding the model's log-density gradient.
    pub fn registry(&self) -> &KernelRegistry {
        &self.registry
    }

    /// Assemble the single-request inputs for one chain — each tensor
    /// `[1, elem..]` — ready for dynamic admission into an in-flight
    /// batch (the `autobatch-serve` driver). `q0` is the chain's initial
    /// position, `[d]` or `[1, d]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q0` has the wrong shape.
    pub fn request_inputs(&self, q0: &Tensor) -> Result<Vec<Tensor>> {
        let row = match q0.shape() {
            [d] if *d == self.dim => q0.reshape(&[1, self.dim]).expect("rank change only"),
            [1, d] if *d == self.dim => q0.clone(),
            other => {
                return Err(NutsError::Shape(format!(
                    "q0 must be [{d}] or [1, {d}], got {other:?}",
                    d = self.dim
                )))
            }
        };
        self.batch_inputs(&row)
    }

    /// Execution options used by both runtimes: the config's seed, and a
    /// stack depth limit covering `max_depth` recursion plus the driver
    /// frames.
    pub fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            seed: self.cfg.seed,
            stack_depth: self.cfg.max_depth + 12,
            ..ExecOptions::default()
        }
    }

    /// Assemble the batch inputs for initial positions `q0` (`[Z, d]`):
    /// `(q0, eps, n_traj, max_depth, rng)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q0` has the wrong shape.
    pub fn batch_inputs(&self, q0: &Tensor) -> Result<Vec<Tensor>> {
        if q0.rank() != 2 || q0.shape()[1] != self.dim {
            return Err(NutsError::Shape(format!(
                "q0 must be [Z, {}], got {:?}",
                self.dim,
                q0.shape()
            )));
        }
        let z = q0.shape()[0];
        Ok(vec![
            q0.clone(),
            Tensor::full(&[z], self.cfg.step_size),
            Tensor::full(&[z], self.cfg.n_trajectories as i64),
            Tensor::full(&[z], self.cfg.max_depth as i64),
            Tensor::zeros(DType::I64, &[z]),
        ])
    }

    /// Run the batch under local static autobatching. Returns the final
    /// positions `[Z, d]`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_local(&self, q0: &Tensor, trace: Option<&mut Trace>) -> Result<Tensor> {
        self.run_local_opts(q0, trace, self.exec_options())
    }

    /// [`BatchNuts::run_local`] with explicit execution options.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_local_opts(
        &self,
        q0: &Tensor,
        trace: Option<&mut Trace>,
        opts: ExecOptions,
    ) -> Result<Tensor> {
        let inputs = self.batch_inputs(q0)?;
        let vm = LocalStaticVm::new(&self.program, self.registry.clone(), opts);
        let outs = vm.run(&inputs, trace)?;
        Ok(outs.into_iter().next().expect("q_out is the first output"))
    }

    /// Run the batch under program-counter autobatching. Returns the
    /// final positions `[Z, d]`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_pc(&self, q0: &Tensor, trace: Option<&mut Trace>) -> Result<Tensor> {
        self.run_pc_opts(q0, trace, self.exec_options())
    }

    /// [`BatchNuts::run_pc`] with explicit execution options.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_pc_opts(
        &self,
        q0: &Tensor,
        trace: Option<&mut Trace>,
        opts: ExecOptions,
    ) -> Result<Tensor> {
        let inputs = self.batch_inputs(q0)?;
        let vm = PcVm::new(&self.lowered, self.registry.clone(), opts);
        let outs = vm.run(&inputs, trace)?;
        Ok(outs.into_iter().next().expect("q_out is the first output"))
    }

    /// Run a batched sampling phase from explicit per-member states: the
    /// compiled program takes per-member step sizes `eps` (`[Z]`) and RNG
    /// counters (`[Z]`) as ordinary batch inputs, so chains adapted
    /// individually (e.g. by [`AdaptiveNuts`](crate::AdaptiveNuts)
    /// warmup) continue their exact draw streams inside one batch.
    ///
    /// Returns `(positions, counters)`, both ready for a further resumed
    /// run.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `q0` is not `[Z, d]` or `eps`/`rng_counter`
    /// are not `[Z]`; propagates runtime errors.
    pub fn run_pc_with(
        &self,
        q0: &Tensor,
        eps: &Tensor,
        n_trajectories: usize,
        rng_counter: &Tensor,
        trace: Option<&mut Trace>,
    ) -> Result<(Tensor, Tensor)> {
        if q0.rank() != 2 || q0.shape()[1] != self.dim {
            return Err(NutsError::Shape(format!(
                "q0 must be [Z, {}], got {:?}",
                self.dim,
                q0.shape()
            )));
        }
        let z = q0.shape()[0];
        if eps.shape() != [z] || rng_counter.shape() != [z] {
            return Err(NutsError::Shape(format!(
                "eps and rng_counter must be [{z}], got {:?} and {:?}",
                eps.shape(),
                rng_counter.shape()
            )));
        }
        let inputs = vec![
            q0.clone(),
            eps.clone(),
            Tensor::full(&[z], n_trajectories as i64),
            Tensor::full(&[z], self.cfg.max_depth as i64),
            rng_counter.clone(),
        ];
        let vm = PcVm::new(&self.lowered, self.registry.clone(), self.exec_options());
        let outs = vm.run(&inputs, trace)?;
        let mut it = outs.into_iter();
        let q = it.next().expect("q_out is the first output");
        let c = it.next().expect("rng_out is the second output");
        Ok((q, c))
    }

    /// Run the batch under dynamic (on-the-fly) batching, the
    /// related-work baseline of paper §5. Returns the final positions
    /// `[Z, d]`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_dynamic(&self, q0: &Tensor, trace: Option<&mut Trace>) -> Result<Tensor> {
        self.run_dynamic_opts(q0, trace, self.exec_options())
    }

    /// [`BatchNuts::run_dynamic`] with explicit execution options.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_dynamic_opts(
        &self,
        q0: &Tensor,
        trace: Option<&mut Trace>,
        opts: ExecOptions,
    ) -> Result<Tensor> {
        let inputs = self.batch_inputs(q0)?;
        let vm = DynamicVm::new(&self.program, self.registry.clone(), opts);
        let outs = vm.run(&inputs, trace)?;
        Ok(outs.into_iter().next().expect("q_out is the first output"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeNuts;
    use autobatch_models::{CorrelatedGaussian, StdNormal};

    fn small_cfg() -> NutsConfig {
        NutsConfig {
            step_size: 0.3,
            n_trajectories: 5,
            max_depth: 5,
            leapfrog_steps: 2,
            seed: 11,
        }
    }

    #[test]
    fn batched_chains_match_native_exactly() {
        // The headline cross-validation: every batch member of the
        // autobatched samplers reproduces the native chain bit for bit.
        let model = StdNormal::new(3);
        let cfg = small_cfg();
        let nuts = BatchNuts::new(Arc::new(model.clone()), cfg).unwrap();
        let q0 =
            Tensor::from_f64(&[0.0, 0.0, 0.0, 1.0, -1.0, 0.5, 2.0, 0.1, -0.7], &[3, 3]).unwrap();

        let local = nuts.run_local(&q0, None).unwrap();
        let pc = nuts.run_pc(&q0, None).unwrap();
        assert_eq!(local, pc, "the two autobatchers agree");
        let dynamic = nuts.run_dynamic(&q0, None).unwrap();
        assert_eq!(local, dynamic, "dynamic batching agrees too");

        let native = NativeNuts::new(&model, cfg);
        for b in 0..3 {
            let (qf, _) = native
                .run_chain(&q0.row(b).unwrap(), b as u64, None)
                .unwrap();
            let batched_row = local.row(b).unwrap();
            let a = qf.as_f64().unwrap();
            let c = batched_row.as_f64().unwrap();
            for (x, y) in a.iter().zip(c) {
                assert!(
                    (x - y).abs() < 1e-12,
                    "member {b}: native {x} vs batched {y}"
                );
            }
        }
    }

    #[test]
    fn correlated_gaussian_batch_runs() {
        let model = CorrelatedGaussian::new(8, 0.8);
        let nuts = BatchNuts::new(Arc::new(model), small_cfg()).unwrap();
        let q0 = Tensor::zeros(DType::F64, &[6, 8]);
        let out = nuts.run_pc(&q0, None).unwrap();
        assert_eq!(out.shape(), &[6, 8]);
        // Chains moved and differ from one another.
        let v = out.as_f64().unwrap();
        assert!(v.iter().any(|&x| x != 0.0));
        assert_ne!(&v[0..8], &v[8..16]);
    }

    #[test]
    fn bad_q0_shape_rejected() {
        let nuts = BatchNuts::new(Arc::new(StdNormal::new(3)), small_cfg()).unwrap();
        let bad = Tensor::zeros(DType::F64, &[2, 5]);
        assert!(nuts.run_local(&bad, None).is_err());
    }

    #[test]
    fn adaptive_warmup_then_batched_sampling_matches_native() {
        // The adaptive pipeline: each chain warms up natively under dual
        // averaging (its own ε and RNG counter), then ALL chains continue
        // in one batch via per-member eps/counter inputs — and the batch
        // reproduces the native continuations bit for bit.
        use crate::adapt::AdaptiveNuts;
        let model = CorrelatedGaussian::new(5, 0.6);
        let cfg = NutsConfig {
            step_size: 0.3,
            n_trajectories: 1,
            max_depth: 5,
            leapfrog_steps: 2,
            seed: 19,
        };
        let z = 3;
        let q0 = Tensor::zeros(DType::F64, &[z, 5]);
        let adapter = AdaptiveNuts::new(&model, cfg, 0.8);
        let chains = adapter.warmup_chains(&q0, 15).unwrap();

        // Native continuation, k more trajectories per chain.
        let k = 3;
        let native = NativeNuts::new(&model, cfg);
        let mut native_rows = Vec::new();
        for ch in &chains {
            let mut st = ch.state.clone();
            for _ in 0..k {
                native.step_trajectory(&mut st, ch.step_size, None).unwrap();
            }
            native_rows.push(st.position().unwrap().reshape(&[1, 5]).unwrap());
        }
        let native_q = Tensor::concat_rows(&native_rows).unwrap();

        // Batched continuation from the same adapted states.
        let warm_rows: Vec<Tensor> = chains
            .iter()
            .map(|c| c.state.position().unwrap().reshape(&[1, 5]).unwrap())
            .collect();
        let q_warm = Tensor::concat_rows(&warm_rows).unwrap();
        let eps: Vec<f64> = chains.iter().map(|c| c.step_size).collect();
        let counters: Vec<i64> = chains.iter().map(|c| c.state.counter()).collect();
        let nuts = BatchNuts::new(Arc::new(model), cfg).unwrap();
        let (q_batch, c_out) = nuts
            .run_pc_with(
                &q_warm,
                &Tensor::from_f64(&eps, &[z]).unwrap(),
                k,
                &Tensor::from_i64(&counters, &[z]).unwrap(),
                None,
            )
            .unwrap();
        let a = native_q.as_f64().unwrap();
        let b = q_batch.as_f64().unwrap();
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "native {x} vs batched {y}");
        }
        // Counters advanced past their warmup values.
        for (b, &c0) in c_out.as_i64().unwrap().iter().zip(&counters) {
            assert!(*b > c0);
        }
    }

    #[test]
    fn run_pc_with_rejects_bad_shapes() {
        let nuts = BatchNuts::new(Arc::new(StdNormal::new(3)), small_cfg()).unwrap();
        let q0 = Tensor::zeros(DType::F64, &[2, 3]);
        let good_eps = Tensor::full(&[2], 0.1);
        let good_ctr = Tensor::zeros(DType::I64, &[2]);
        let bad_eps = Tensor::full(&[3], 0.1);
        assert!(nuts.run_pc_with(&q0, &bad_eps, 1, &good_ctr, None).is_err());
        let bad_q = Tensor::zeros(DType::F64, &[2, 4]);
        assert!(nuts
            .run_pc_with(&bad_q, &good_eps, 1, &good_ctr, None)
            .is_err());
    }

    #[test]
    fn utilization_is_tracked_for_gradients() {
        use autobatch_accel::{Backend, Trace};
        let model = CorrelatedGaussian::new(8, 0.9);
        let nuts = BatchNuts::new(Arc::new(model), small_cfg()).unwrap();
        let q0 = Tensor::zeros(DType::F64, &[8, 8]);
        let mut tr = Trace::new(Backend::xla_cpu());
        nuts.run_pc(&q0, Some(&mut tr)).unwrap();
        let util = tr.utilization("grad");
        assert!(util > 0.0 && util <= 1.0, "util = {util}");
        assert!(tr.useful_count("grad") > 0);
    }
}
