//! Extraction of embedded surface-language programs from Rust sources.
//!
//! The repository's example binaries embed their programs as Rust
//! string literals (plain or raw). The `irlint` tool and the examples
//! smoke test both need to find every such program without executing
//! the examples, so this module implements a small scanner over Rust
//! source text: it walks the text outside of comments, collects every
//! string literal, and keeps the ones that parse as a surface-language
//! module containing at least one function.
//!
//! The scanner understands `//` line comments, `/* */` block comments
//! (non-nesting, which is all the examples use), plain `"..."` literals
//! with backslash escapes, and raw `r"..."` / `r#"..."#` literals with
//! any number of `#`s. Char literals are skipped conservatively so a
//! `'"'` char cannot open a phantom string.

use crate::parser::parse;

/// Collect every string literal in `rust_src` (outside comments).
fn string_literals(rust_src: &str) -> Vec<String> {
    let b = rust_src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'\'' => {
                // Char literal or lifetime. Consume `'x'` / `'\n'` /
                // `'\''` forms; a lifetime (no closing quote within a
                // few bytes) is just stepped over.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    i = (j + 1).min(b.len());
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            b'r' => {
                // Possible raw string: r"..." or r#"..."# etc.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    let body_start = j + 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let mut k = body_start;
                    while k + closer.len() <= b.len() && b[k..k + closer.len()] != closer[..] {
                        k += 1;
                    }
                    out.push(rust_src[body_start..k.min(b.len())].to_string());
                    i = (k + closer.len()).min(b.len());
                } else {
                    i += 1;
                }
            }
            b'"' => {
                let mut s: Vec<u8> = Vec::new();
                let mut j = i + 1;
                while j < b.len() && b[j] != b'"' {
                    if b[j] == b'\\' && j + 1 < b.len() {
                        match b[j + 1] {
                            b'n' => s.push(b'\n'),
                            b't' => s.push(b'\t'),
                            b'r' => s.push(b'\r'),
                            b'\\' => s.push(b'\\'),
                            b'"' => s.push(b'"'),
                            b'\n' => {
                                // Line-continuation escape: skip the
                                // newline and following indentation.
                                j += 2;
                                while j < b.len() && (b[j] == b' ' || b[j] == b'\t') {
                                    j += 1;
                                }
                                continue;
                            }
                            other => {
                                s.push(b'\\');
                                s.push(other);
                            }
                        }
                        j += 2;
                    } else {
                        s.push(b[j]);
                        j += 1;
                    }
                }
                out.push(String::from_utf8_lossy(&s).into_owned());
                i = (j + 1).min(b.len());
            }
            _ => i += 1,
        }
    }
    out
}

/// Extract every embedded surface-language program from a Rust source
/// file: string literals (outside comments) that parse as a module with
/// at least one function definition. Returned in source order.
pub fn embedded_sources(rust_src: &str) -> Vec<String> {
    string_literals(rust_src)
        .into_iter()
        .filter(|s| matches!(parse(s), Ok(m) if !m.fns.is_empty()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_plain_and_raw_literals_and_skips_comments() {
        let rust = r##"
            // "fn in_comment(n: int) -> (o: int) { o = n; }"
            /* "fn in_block(n: int) -> (o: int) { o = n; }" */
            const A: &str = "fn plain(n: int) -> (o: int) { o = n; }";
            const B: &str = r#"fn raw(x: float) -> (y: float) { y = x * x; }"#;
            const C: &str = "not a program";
            fn f(c: char) { let _ = '"'; }
        "##;
        let progs = embedded_sources(rust);
        assert_eq!(progs.len(), 2);
        assert!(progs[0].contains("fn plain"));
        assert!(progs[1].contains("fn raw"));
    }

    #[test]
    fn unescapes_plain_literals() {
        let rust = "const S: &str = \"fn f(n: int) -> (o: int) {\\n o = n; }\";";
        let progs = embedded_sources(rust);
        assert_eq!(progs.len(), 1);
        assert!(progs[0].contains("{\n o = n; }"));
    }
}
