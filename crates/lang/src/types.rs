//! Static type checking for the surface language.
//!
//! Catching shape/dtype errors *before* batching matters in this system:
//! at runtime a masked lane executes junk data by design (paper §2), so
//! the earlier a real type error is caught, the less it can hide behind
//! junk-lane noise.

use std::collections::BTreeMap;

use crate::ast::*;
use crate::error::{LangError, Pos, Result};

/// Scalar-or-vector polymorphic builtins: `name(float) -> float` and
/// `name(vec) -> vec`.
pub const UNARY_MATH: &[&str] = &[
    "exp", "ln", "sqrt", "abs", "sigmoid", "softplus", "floor", "square", "sin", "cos", "tanh",
];

/// Counter-based RNG builtins: `name(int) -> (float, int)`.
pub const RNG_SCALAR: &[&str] = &["uniform", "normal", "exponential"];

/// The signature of a callable (user function, extern, or builtin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Output types.
    pub outputs: Vec<Ty>,
}

/// Type environments map variable names to types.
pub type TypeEnv = BTreeMap<String, Ty>;

/// Callable tables shared by the checker and the lowering.
#[derive(Debug, Clone, Default)]
pub struct Tables {
    /// User functions by name.
    pub fns: BTreeMap<String, Signature>,
    /// Extern kernels by name.
    pub externs: BTreeMap<String, Signature>,
}

impl Tables {
    /// Build the tables from a module, rejecting duplicate names.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate or extern/function name collisions.
    pub fn new(m: &Module) -> Result<Tables> {
        let mut t = Tables::default();
        for e in &m.externs {
            let sig = Signature {
                params: e.params.clone(),
                outputs: e.outputs.clone(),
            };
            if t.externs.insert(e.name.clone(), sig).is_some() {
                return Err(LangError::new(
                    format!("duplicate extern `{}`", e.name),
                    e.pos,
                ));
            }
        }
        for f in &m.fns {
            let sig = Signature {
                params: f.params.iter().map(|b| b.ty).collect(),
                outputs: f.outputs.iter().map(|b| b.ty).collect(),
            };
            if t.fns.insert(f.name.clone(), sig).is_some() || t.externs.contains_key(&f.name) {
                return Err(LangError::new(
                    format!("duplicate function `{}`", f.name),
                    f.pos,
                ));
            }
        }
        Ok(t)
    }

    /// Resolve a call signature: user function, extern, or builtin.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or argument-type mismatches.
    pub fn call_signature(&self, name: &str, args: &[Ty], pos: Pos) -> Result<Signature> {
        if let Some(sig) = self.fns.get(name).or_else(|| self.externs.get(name)) {
            if sig.params != args {
                return Err(LangError::new(
                    format!(
                        "`{name}` expects ({}), got ({})",
                        tys(&sig.params),
                        tys(args)
                    ),
                    pos,
                ));
            }
            return Ok(sig.clone());
        }
        builtin_signature(name, args, pos)
    }
}

fn tys(ts: &[Ty]) -> String {
    ts.iter().map(Ty::to_string).collect::<Vec<_>>().join(", ")
}

/// Resolve a builtin's signature for the given argument types.
///
/// # Errors
///
/// Returns an error for unknown builtins or ill-typed arguments.
pub fn builtin_signature(name: &str, args: &[Ty], pos: Pos) -> Result<Signature> {
    let sig = |params: Vec<Ty>, outputs: Vec<Ty>| Signature { params, outputs };
    let bad = || {
        Err(LangError::new(
            format!("builtin `{name}` cannot take ({})", tys(args)),
            pos,
        ))
    };
    match name {
        _ if UNARY_MATH.contains(&name) => match args {
            [Ty::Float] => Ok(sig(vec![Ty::Float], vec![Ty::Float])),
            [Ty::Vec] => Ok(sig(vec![Ty::Vec], vec![Ty::Vec])),
            _ => bad(),
        },
        "min" | "max" => match args {
            [Ty::Float, Ty::Float] => Ok(sig(vec![Ty::Float; 2], vec![Ty::Float])),
            [Ty::Int, Ty::Int] => Ok(sig(vec![Ty::Int; 2], vec![Ty::Int])),
            _ => bad(),
        },
        "pow" => match args {
            [Ty::Float, Ty::Float] => Ok(sig(vec![Ty::Float; 2], vec![Ty::Float])),
            [Ty::Vec, Ty::Float] => Ok(sig(vec![Ty::Vec, Ty::Float], vec![Ty::Vec])),
            _ => bad(),
        },
        "select" => match args {
            [Ty::Bool, a, b] if a == b => Ok(sig(vec![Ty::Bool, *a, *b], vec![*a])),
            _ => bad(),
        },
        "dot" => match args {
            [Ty::Vec, Ty::Vec] => Ok(sig(vec![Ty::Vec; 2], vec![Ty::Float])),
            _ => bad(),
        },
        "sum" => match args {
            [Ty::Vec] => Ok(sig(vec![Ty::Vec], vec![Ty::Float])),
            _ => bad(),
        },
        "zeros_like" => match args {
            [Ty::Vec] => Ok(sig(vec![Ty::Vec], vec![Ty::Vec])),
            _ => bad(),
        },
        "float" => match args {
            [Ty::Int] | [Ty::Bool] | [Ty::Float] => Ok(sig(args.to_vec(), vec![Ty::Float])),
            _ => bad(),
        },
        "int" => match args {
            [Ty::Float] | [Ty::Bool] | [Ty::Int] => Ok(sig(args.to_vec(), vec![Ty::Int])),
            _ => bad(),
        },
        "bool" => match args {
            [Ty::Float] | [Ty::Int] | [Ty::Bool] => Ok(sig(args.to_vec(), vec![Ty::Bool])),
            _ => bad(),
        },
        _ if RNG_SCALAR.contains(&name) => match args {
            [Ty::Int] => Ok(sig(vec![Ty::Int], vec![Ty::Float, Ty::Int])),
            _ => bad(),
        },
        "normal_like" => match args {
            [Ty::Int, Ty::Vec] => Ok(sig(vec![Ty::Int, Ty::Vec], vec![Ty::Vec, Ty::Int])),
            _ => bad(),
        },
        _ => Err(LangError::new(format!("unknown function `{name}`"), pos)),
    }
}

/// Infer the type of an expression (single-output context).
///
/// # Errors
///
/// Returns a positioned error on any type violation.
pub fn type_of_expr(env: &TypeEnv, tables: &Tables, e: &Expr) -> Result<Ty> {
    match e {
        Expr::Int(_, _) => Ok(Ty::Int),
        Expr::Float(_, _) => Ok(Ty::Float),
        Expr::Bool(_, _) => Ok(Ty::Bool),
        Expr::Var(name, pos) => env
            .get(name)
            .copied()
            .ok_or_else(|| LangError::new(format!("unknown variable `{name}`"), *pos)),
        Expr::Unary { op, expr, pos } => {
            let t = type_of_expr(env, tables, expr)?;
            match (op, t) {
                (UnOp::Neg, Ty::Float | Ty::Int | Ty::Vec) => Ok(t),
                (UnOp::Not, Ty::Bool) => Ok(Ty::Bool),
                _ => Err(LangError::new(
                    format!("operator `{op:?}` cannot take {t}"),
                    *pos,
                )),
            }
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let a = type_of_expr(env, tables, lhs)?;
            let b = type_of_expr(env, tables, rhs)?;
            binary_type(*op, a, b, *pos)
        }
        Expr::Call { name, args, pos } => {
            let arg_tys: Vec<Ty> = args
                .iter()
                .map(|a| type_of_expr(env, tables, a))
                .collect::<Result<_>>()?;
            let sig = tables.call_signature(name, &arg_tys, *pos)?;
            match sig.outputs.as_slice() {
                [one] => Ok(*one),
                outs => Err(LangError::new(
                    format!(
                        "`{name}` returns {} values; bind them with `let (a, b, ..) = ..`",
                        outs.len()
                    ),
                    *pos,
                )),
            }
        }
    }
}

/// The result type of a binary operation.
///
/// # Errors
///
/// Returns an error for ill-typed operand pairs. Numeric types never mix
/// implicitly — cast with `float(..)` / `int(..)`.
pub fn binary_type(op: BinOp, a: Ty, b: Ty, pos: Pos) -> Result<Ty> {
    use BinOp::*;
    use Ty::*;
    let r = match (op, a, b) {
        (Add | Sub | Mul | Div, Float, Float) => Some(Float),
        (Add | Sub | Mul | Div, Int, Int) => Some(Int),
        (Add | Sub | Mul | Div, Vec, Vec) => Some(Vec),
        (Add | Sub | Mul | Div, Vec, Float) | (Add | Sub | Mul | Div, Float, Vec) => Some(Vec),
        (Lt | Le | Gt | Ge, Float, Float) | (Lt | Le | Gt | Ge, Int, Int) => Some(Bool),
        (Eq | Ne, Float, Float) | (Eq | Ne, Int, Int) | (Eq | Ne, Bool, Bool) => Some(Bool),
        (And | Or, Bool, Bool) => Some(Bool),
        _ => None,
    };
    r.ok_or_else(|| {
        LangError::new(
            format!("operator `{op:?}` cannot take ({a}, {b}); cast explicitly"),
            pos,
        )
    })
}

/// Type-check a whole module.
///
/// Scoping rules: parameters and outputs are in scope for the whole
/// function body; `let` introduces a fresh name scoped to its block; a
/// name cannot be redeclared anywhere in the same function (the IR has a
/// single flat store per function, so shadowing would alias).
///
/// # Errors
///
/// Returns the first type error with its source position.
pub fn check_module(m: &Module) -> Result<Tables> {
    let tables = Tables::new(m)?;
    for f in &m.fns {
        let mut env: TypeEnv = TypeEnv::new();
        let mut declared: TypeEnv = TypeEnv::new();
        for b in f.params.iter().chain(&f.outputs) {
            if declared.insert(b.name.clone(), b.ty).is_some() {
                return Err(LangError::new(
                    format!("duplicate binding `{}`", b.name),
                    b.pos,
                ));
            }
            env.insert(b.name.clone(), b.ty);
        }
        check_block(&f.body, &mut env, &mut declared, &tables)?;
    }
    Ok(tables)
}

fn check_block(
    stmts: &[Stmt],
    env: &mut TypeEnv,
    declared: &mut TypeEnv,
    tables: &Tables,
) -> Result<()> {
    let scope_names: Vec<String> = Vec::new();
    let mut scoped = scope_names;
    for s in stmts {
        match s {
            Stmt::Let { names, value, pos } => {
                let out_tys = value_types(names.len(), value, env, tables)?;
                for (n, t) in names.iter().zip(&out_tys) {
                    if declared.contains_key(n) {
                        return Err(LangError::new(
                            format!("`{n}` is already declared in this function"),
                            *pos,
                        ));
                    }
                    declared.insert(n.clone(), *t);
                    env.insert(n.clone(), *t);
                    scoped.push(n.clone());
                }
            }
            Stmt::Assign { names, value, pos } => {
                let out_tys = value_types(names.len(), value, env, tables)?;
                for (n, t) in names.iter().zip(&out_tys) {
                    match env.get(n) {
                        None => {
                            return Err(LangError::new(
                                format!("assignment to undeclared variable `{n}` (use `let`)"),
                                *pos,
                            ))
                        }
                        Some(have) if have != t => {
                            return Err(LangError::new(
                                format!("`{n}` has type {have}, assigned {t}"),
                                *pos,
                            ))
                        }
                        Some(_) => {}
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                pos,
            } => {
                let ct = type_of_expr(env, tables, cond)?;
                if ct != Ty::Bool {
                    return Err(LangError::new(
                        format!("if condition is {ct}, not bool"),
                        *pos,
                    ));
                }
                let mut then_env = env.clone();
                check_block(then_blk, &mut then_env, declared, tables)?;
                let mut else_env = env.clone();
                check_block(else_blk, &mut else_env, declared, tables)?;
            }
            Stmt::While { cond, body, pos } => {
                let ct = type_of_expr(env, tables, cond)?;
                if ct != Ty::Bool {
                    return Err(LangError::new(
                        format!("while condition is {ct}, not bool"),
                        *pos,
                    ));
                }
                let mut body_env = env.clone();
                check_block(body, &mut body_env, declared, tables)?;
            }
        }
    }
    for n in scoped {
        env.remove(&n);
    }
    Ok(())
}

/// Types of a (possibly multi-valued) right-hand side bound to `n` names.
fn value_types(n: usize, value: &Expr, env: &TypeEnv, tables: &Tables) -> Result<Vec<Ty>> {
    if n == 1 {
        return Ok(vec![type_of_expr(env, tables, value)?]);
    }
    match value {
        Expr::Call { name, args, pos } => {
            let arg_tys: Vec<Ty> = args
                .iter()
                .map(|a| type_of_expr(env, tables, a))
                .collect::<Result<_>>()?;
            let sig = tables.call_signature(name, &arg_tys, *pos)?;
            if sig.outputs.len() != n {
                return Err(LangError::new(
                    format!(
                        "`{name}` returns {} values, pattern binds {n}",
                        sig.outputs.len()
                    ),
                    *pos,
                ));
            }
            Ok(sig.outputs)
        }
        other => Err(LangError::new(
            "only calls can bind multiple values".to_string(),
            other.pos(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<Tables> {
        check_module(&parse(src).unwrap())
    }

    #[test]
    fn fibonacci_checks() {
        check(
            "fn fib(n: int) -> (out: int) {
                if n <= 1 { out = 1; }
                else { let l = fib(n - 2); let r = fib(n - 1); out = l + r; }
            }",
        )
        .unwrap();
    }

    #[test]
    fn int_float_mixing_rejected() {
        let err = check("fn f(x: int) -> (y: float) { y = x + 1.0; }").unwrap_err();
        assert!(err.message.contains("cast"), "{err}");
    }

    #[test]
    fn explicit_cast_accepted() {
        check("fn f(x: int) -> (y: float) { y = float(x) + 1.0; }").unwrap();
    }

    #[test]
    fn vector_scalar_broadcast_types() {
        check(
            "fn f(q: vec, eps: float) -> (r: vec) {
                r = q + eps * q;
            }",
        )
        .unwrap();
        check("fn f(q: vec) -> (r: float) { r = dot(q, q) + sum(q); }").unwrap();
    }

    #[test]
    fn condition_must_be_bool() {
        let err =
            check("fn f(x: int) -> (y: int) { if x { y = 1; } else { y = 0; } }").unwrap_err();
        assert!(err.message.contains("bool"));
    }

    #[test]
    fn undeclared_assignment_rejected() {
        let err = check("fn f(x: int) -> (y: int) { z = x; y = x; }").unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn redeclaration_rejected() {
        let err = check(
            "fn f(x: int) -> (y: int) {
                if x < 0 { let t = 1; y = t; } else { let t = 2; y = t; }
            }",
        )
        .unwrap_err();
        assert!(err.message.contains("already declared"));
    }

    #[test]
    fn let_scopes_to_block() {
        // t declared in the if-branch must not be visible after it.
        let err = check(
            "fn f(x: int) -> (y: int) {
                if x < 0 { let t = 1; y = t; } else { y = 0; }
                y = t;
            }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown variable `t`"), "{err}");
    }

    #[test]
    fn rng_builtins_are_multi_valued() {
        check(
            "fn f(rng: int) -> (u: float, rng2: int) {
                (u, rng2) = uniform(rng);
            }",
        )
        .unwrap();
        let err = check("fn f(rng: int) -> (u: float) { u = uniform(rng); }").unwrap_err();
        assert!(err.message.contains("returns 2 values"));
    }

    #[test]
    fn externs_resolve() {
        check(
            "extern grad(vec) -> (vec);
             fn f(q: vec) -> (g: vec) { g = grad(q); }",
        )
        .unwrap();
        let err = check("fn f(q: vec) -> (g: vec) { g = grad(q); }").unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn select_requires_matching_branches() {
        check("fn f(c: bool, a: vec, b: vec) -> (r: vec) { r = select(c, a, b); }").unwrap();
        let err = check("fn f(c: bool, a: vec, b: float) -> (r: vec) { r = select(c, a, b); }")
            .unwrap_err();
        assert!(err.message.contains("select"));
    }

    #[test]
    fn assignment_type_mismatch_rejected() {
        let err = check("fn f(x: int) -> (y: int) { y = 1.0; }").unwrap_err();
        assert!(err.message.contains("has type int"));
    }

    #[test]
    fn arity_mismatch_on_user_call() {
        let err = check(
            "fn g(a: int, b: int) -> (r: int) { r = a + b; }
             fn f(x: int) -> (y: int) { y = g(x); }",
        )
        .unwrap_err();
        assert!(err.message.contains("expects"));
    }
}
