//! Lowering from the surface AST to the [`lsab`](autobatch_ir::lsab) CFG
//! language — the job AutoGraph does for the paper's Python frontend.
//!
//! Structured `if`/`while` become the standard `Branch`/`Jump` block
//! encodings; expressions flatten into primitive ops on fresh
//! temporaries; user calls become `Call` ops (which the program-counter
//! lowering later turns into explicit stack discipline).
//!
//! Note that `&&` and `||` are *strict* (both sides evaluate): in a
//! batched semantics every operand is computed for the whole batch
//! anyway, so short-circuiting would buy nothing and complicate the CFG.

use std::collections::BTreeMap;

use autobatch_ir::build::{FunctionBuilder, ProgramBuilder};
use autobatch_ir::{lsab, FuncId, Prim, Var};

use crate::ast::*;
use crate::error::{LangError, Result};
use crate::parser::parse;
use crate::types::{check_module, Tables, TypeEnv, RNG_SCALAR, UNARY_MATH};

/// Compile surface source text into a validated [`lsab::Program`] with
/// `entry` as the entry function.
///
/// # Errors
///
/// Returns lexing/parsing/type errors with positions, or an unknown-entry
/// error.
///
/// # Examples
///
/// ```
/// let src = "
///     fn double(x: float) -> (y: float) {
///         y = x + x;
///     }
/// ";
/// let program = autobatch_lang::compile(src, "double")?;
/// assert_eq!(program.funcs.len(), 1);
/// # Ok::<(), autobatch_lang::LangError>(())
/// ```
pub fn compile(src: &str, entry: &str) -> Result<lsab::Program> {
    let module = parse(src)?;
    compile_module(&module, entry)
}

/// Compile an already-parsed module.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_module(module: &Module, entry: &str) -> Result<lsab::Program> {
    let tables = check_module(module)?;
    let mut pb = ProgramBuilder::new();
    let mut fn_ids: BTreeMap<String, FuncId> = BTreeMap::new();
    for f in &module.fns {
        let params: Vec<&str> = f.params.iter().map(|b| b.name.as_str()).collect();
        let outputs: Vec<&str> = f.outputs.iter().map(|b| b.name.as_str()).collect();
        fn_ids.insert(f.name.clone(), pb.declare(&f.name, &params, &outputs));
    }
    let entry_id = *fn_ids.get(entry).ok_or_else(|| {
        LangError::new(
            format!("entry function `{entry}` not found"),
            Default::default(),
        )
    })?;
    let ctx = Ctx {
        tables: &tables,
        fn_ids: &fn_ids,
    };
    for f in &module.fns {
        let mut err: Option<LangError> = None;
        pb.define(fn_ids[&f.name], |fb| {
            let mut env: TypeEnv = TypeEnv::new();
            for b in f.params.iter().chain(&f.outputs) {
                env.insert(b.name.clone(), b.ty);
            }
            if let Err(e) = lower_block(&ctx, fb, &f.body, &mut env) {
                err = Some(e);
                fb.ret(); // keep the builder well-formed for the error path
                return;
            }
            fb.ret();
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    pb.finish(entry_id).map_err(|e| {
        LangError::new(
            format!("internal lowering produced invalid IR: {e}"),
            Default::default(),
        )
    })
}

struct Ctx<'a> {
    tables: &'a Tables,
    fn_ids: &'a BTreeMap<String, FuncId>,
}

fn lower_block(
    ctx: &Ctx<'_>,
    fb: &mut FunctionBuilder,
    stmts: &[Stmt],
    env: &mut TypeEnv,
) -> Result<()> {
    for s in stmts {
        match s {
            Stmt::Let { names, value, .. } | Stmt::Assign { names, value, .. } => {
                let is_let = matches!(s, Stmt::Let { .. });
                if names.len() == 1 {
                    let (v, ty) = lower_expr(ctx, fb, env, value)?;
                    fb.copy(&Var::new(&names[0]), &v);
                    if is_let {
                        env.insert(names[0].clone(), ty);
                    }
                } else {
                    let tys = lower_multi_call(ctx, fb, env, names, value)?;
                    if is_let {
                        for (n, t) in names.iter().zip(tys) {
                            env.insert(n.clone(), t);
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let (c, _) = lower_expr(ctx, fb, env, cond)?;
                let tb = fb.new_block();
                let eb = fb.new_block();
                let join = fb.new_block();
                fb.branch(&c, tb, eb);
                fb.switch_to(tb);
                let mut tenv = env.clone();
                lower_block(ctx, fb, then_blk, &mut tenv)?;
                fb.jump(join);
                fb.switch_to(eb);
                let mut eenv = env.clone();
                lower_block(ctx, fb, else_blk, &mut eenv)?;
                fb.jump(join);
                fb.switch_to(join);
            }
            Stmt::While { cond, body, .. } => {
                let hb = fb.new_block();
                let bb = fb.new_block();
                let xb = fb.new_block();
                fb.jump(hb);
                fb.switch_to(hb);
                let (c, _) = lower_expr(ctx, fb, env, cond)?;
                fb.branch(&c, bb, xb);
                fb.switch_to(bb);
                let mut benv = env.clone();
                lower_block(ctx, fb, body, &mut benv)?;
                fb.jump(hb);
                fb.switch_to(xb);
            }
        }
    }
    Ok(())
}

/// Lower a multi-output call statement into the named target variables.
fn lower_multi_call(
    ctx: &Ctx<'_>,
    fb: &mut FunctionBuilder,
    env: &mut TypeEnv,
    names: &[String],
    value: &Expr,
) -> Result<Vec<Ty>> {
    let Expr::Call { name, args, pos } = value else {
        return Err(LangError::new(
            "only calls can bind multiple values".to_string(),
            value.pos(),
        ));
    };
    let mut arg_vars = Vec::with_capacity(args.len());
    let mut arg_tys = Vec::with_capacity(args.len());
    for a in args {
        let (v, t) = lower_expr(ctx, fb, env, a)?;
        arg_vars.push(v);
        arg_tys.push(t);
    }
    let sig = ctx.tables.call_signature(name, &arg_tys, *pos)?;
    let outs: Vec<Var> = names.iter().map(Var::new).collect();
    if let Some(fid) = ctx.fn_ids.get(name) {
        fb.call_into(&outs, *fid, &arg_vars);
    } else if ctx.tables.externs.contains_key(name) {
        fb.assign_multi(&outs, Prim::external(name), &arg_vars);
    } else {
        let prim = match name.as_str() {
            "uniform" => Prim::RandUniform,
            "normal" => Prim::RandNormal,
            "exponential" => Prim::RandExponential,
            "normal_like" => Prim::RandNormalLike,
            other => {
                return Err(LangError::new(
                    format!("`{other}` is not multi-valued"),
                    *pos,
                ))
            }
        };
        fb.assign_multi(&outs, prim, &arg_vars);
    }
    Ok(sig.outputs)
}

/// Lower an expression, returning the variable holding it and its type.
fn lower_expr(
    ctx: &Ctx<'_>,
    fb: &mut FunctionBuilder,
    env: &TypeEnv,
    e: &Expr,
) -> Result<(Var, Ty)> {
    match e {
        Expr::Int(v, _) => Ok((fb.const_i64(*v), Ty::Int)),
        Expr::Float(v, _) => Ok((fb.const_f64(*v), Ty::Float)),
        Expr::Bool(v, _) => Ok((fb.const_bool(*v), Ty::Bool)),
        Expr::Var(name, pos) => {
            let ty = env
                .get(name)
                .copied()
                .ok_or_else(|| LangError::new(format!("unknown variable `{name}`"), *pos))?;
            Ok((Var::new(name), ty))
        }
        Expr::Unary { op, expr, pos } => {
            let (v, t) = lower_expr(ctx, fb, env, expr)?;
            let (prim, ty) = match (op, t) {
                (UnOp::Neg, Ty::Int) => (Prim::NegI, Ty::Int),
                (UnOp::Neg, Ty::Float) => (Prim::Neg, Ty::Float),
                (UnOp::Neg, Ty::Vec) => (Prim::Neg, Ty::Vec),
                (UnOp::Not, Ty::Bool) => (Prim::Not, Ty::Bool),
                _ => {
                    return Err(LangError::new(
                        format!("operator `{op:?}` cannot take {t}"),
                        *pos,
                    ))
                }
            };
            Ok((fb.emit(prim, &[v]), ty))
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let (a, ta) = lower_expr(ctx, fb, env, lhs)?;
            let (b, tb) = lower_expr(ctx, fb, env, rhs)?;
            let ty = crate::types::binary_type(*op, ta, tb, *pos)?;
            let prim = match op {
                BinOp::Add => Prim::Add,
                BinOp::Sub => Prim::Sub,
                BinOp::Mul => Prim::Mul,
                BinOp::Div => Prim::Div,
                BinOp::Lt => Prim::Lt,
                BinOp::Le => Prim::Le,
                BinOp::Gt => Prim::Gt,
                BinOp::Ge => Prim::Ge,
                BinOp::Eq => Prim::EqE,
                BinOp::Ne => Prim::NeE,
                BinOp::And => Prim::And,
                BinOp::Or => Prim::Or,
            };
            Ok((fb.emit(prim, &[a, b]), ty))
        }
        Expr::Call { name, args, pos } => {
            let mut arg_vars = Vec::with_capacity(args.len());
            let mut arg_tys = Vec::with_capacity(args.len());
            for a in args {
                let (v, t) = lower_expr(ctx, fb, env, a)?;
                arg_vars.push(v);
                arg_tys.push(t);
            }
            let sig = ctx.tables.call_signature(name, &arg_tys, *pos)?;
            let [out_ty] = sig.outputs.as_slice() else {
                return Err(LangError::new(
                    format!("`{name}` returns multiple values; bind with `let (..)`"),
                    *pos,
                ));
            };
            if let Some(fid) = ctx.fn_ids.get(name) {
                let outs = fb.call(*fid, &arg_vars, 1);
                return Ok((outs.into_iter().next().expect("one output"), *out_ty));
            }
            if ctx.tables.externs.contains_key(name) {
                return Ok((fb.emit(Prim::external(name), &arg_vars), *out_ty));
            }
            let prim = builtin_prim(name, &arg_tys)
                .ok_or_else(|| LangError::new(format!("unknown function `{name}`"), *pos))?;
            Ok((fb.emit(prim, &arg_vars), *out_ty))
        }
    }
}

/// Map a single-output builtin to its primitive.
fn builtin_prim(name: &str, args: &[Ty]) -> Option<Prim> {
    if UNARY_MATH.contains(&name) {
        return Some(match name {
            "exp" => Prim::Exp,
            "ln" => Prim::Ln,
            "sqrt" => Prim::Sqrt,
            "abs" => Prim::Abs,
            "sigmoid" => Prim::Sigmoid,
            "softplus" => Prim::Softplus,
            "floor" => Prim::Floor,
            "square" => Prim::Square,
            "sin" => Prim::Sin,
            "cos" => Prim::Cos,
            "tanh" => Prim::Tanh,
            _ => unreachable!("UNARY_MATH covered"),
        });
    }
    if RNG_SCALAR.contains(&name) || name == "normal_like" {
        return None; // multi-valued; handled at statement level
    }
    Some(match name {
        "min" => Prim::Min2,
        "max" => Prim::Max2,
        "pow" => Prim::Pow,
        "select" => Prim::Select,
        "dot" => Prim::Dot,
        "sum" => Prim::SumElems,
        "zeros_like" => Prim::FillLike(0.0),
        "float" => Prim::ToF64,
        "int" => Prim::ToI64,
        "bool" => Prim::ToBool,
        _ => {
            let _ = args;
            return None;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_fibonacci_to_valid_ir() {
        let src = "
            fn fibonacci(n: int) -> (out: int) {
                if n <= 1 { out = 1; }
                else {
                    let left = fibonacci(n - 2);
                    let right = fibonacci(n - 1);
                    out = left + right;
                }
            }
        ";
        let p = compile(src, "fibonacci").unwrap();
        p.validate().unwrap();
        assert_eq!(p.funcs[0].name, "fibonacci");
    }

    #[test]
    fn unknown_entry_is_error() {
        let err = compile("fn f(x: int) -> (y: int) { y = x; }", "main").unwrap_err();
        assert!(err.message.contains("entry"));
    }

    #[test]
    fn while_and_externs_compile() {
        let src = "
            extern grad(vec) -> (vec);
            fn steps(q: vec, n: int, eps: float) -> (out: vec) {
                let i = 0;
                out = q;
                while i < n {
                    out = out + eps * grad(out);
                    i = i + 1;
                }
            }
        ";
        let p = compile(src, "steps").unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn multi_output_functions_compile() {
        let src = "
            fn divmod(a: int, b: int) -> (q: int, r: int) {
                q = a / b;
                r = a - q * b;
            }
            fn main(a: int, b: int) -> (s: int) {
                let (q, r) = divmod(a, b);
                s = q + r;
            }
        ";
        let p = compile(src, "main").unwrap();
        p.validate().unwrap();
        assert_eq!(p.funcs.len(), 2);
    }

    #[test]
    fn pow_builtin_compiles_and_types() {
        let p = compile(
            "fn f(x: float, q: vec) -> (r: float) { r = pow(x, 2.0) + sum(pow(q, 0.5)); }",
            "f",
        )
        .unwrap();
        p.validate().unwrap();
        // Int exponents are rejected (cast explicitly).
        assert!(compile("fn f(x: float) -> (r: float) { r = pow(x, 2); }", "f").is_err());
    }

    #[test]
    fn rng_statement_compiles() {
        let src = "
            fn draw(rng: int) -> (x: float, rng_out: int) {
                let (u, r1) = uniform(rng);
                let (g, r2) = normal(r1);
                x = u + g;
                rng_out = r2;
            }
        ";
        let p = compile(src, "draw").unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn type_error_positions_survive_compile() {
        let err = compile("fn f(x: int) -> (y: float) { y = x + 1.0; }", "f").unwrap_err();
        assert_eq!(err.pos.line, 1);
    }
}
