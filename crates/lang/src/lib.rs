//! # autobatch-lang
//!
//! The surface-language frontend: a small, statically typed imperative
//! language in which single-example programs (like the paper's recursive
//! NUTS) are written, mechanically compiled to the
//! [`lsab`](autobatch_ir::lsab) CFG language of
//! [Radul et al., MLSys 2020](https://arxiv.org/abs/1910.11141), Figure 2.
//!
//! This crate substitutes for the paper's Python + AutoGraph frontend
//! (see DESIGN.md §2): the essential property — *the user writes ordinary
//! single-example imperative code with `if`/`while`/recursion and the
//! system batches it* — is preserved; only the surface syntax differs.
//!
//! Pipeline: [`parse`] → [`check_module`] → [`compile`] (lex, parse, type
//! check, lower).
//!
//! # Examples
//!
//! ```
//! let src = "
//!     fn fibonacci(n: int) -> (out: int) {
//!         if n <= 1 { out = 1; }
//!         else {
//!             let left = fibonacci(n - 2);
//!             let right = fibonacci(n - 1);
//!             out = left + right;
//!         }
//!     }
//! ";
//! let program = autobatch_lang::compile(src, "fibonacci")?;
//! program.validate().expect("well-formed IR");
//! # Ok::<(), autobatch_lang::LangError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod error;
mod extract;
pub mod genprog;
mod lower;
mod parser;
mod token;
pub mod types;

pub use error::{LangError, Pos, Result};
pub use extract::embedded_sources;
pub use genprog::{gen_program, GeneratedProgram};
pub use lower::{compile, compile_module};
pub use parser::parse;
pub use types::{check_module, Tables};
