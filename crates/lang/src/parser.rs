//! Recursive-descent parser for the surface language.

use crate::ast::*;
use crate::error::{LangError, Pos, Result};
use crate::token::{lex, Tok, Token};

/// Parse a whole module.
///
/// # Errors
///
/// Returns the first syntax error with its source position.
pub fn parse(src: &str) -> Result<Module> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    p.module()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(LangError::new(
                format!("expected {what}, found {:?}", self.peek()),
                self.pos(),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(LangError::new(
                format!("expected {what}, found {other:?}"),
                self.pos(),
            )),
        }
    }

    fn ty(&mut self) -> Result<Ty> {
        let t = match self.peek() {
            Tok::TyFloat => Ty::Float,
            Tok::TyInt => Ty::Int,
            Tok::TyBool => Ty::Bool,
            Tok::TyVec => Ty::Vec,
            other => {
                return Err(LangError::new(
                    format!("expected a type, found {other:?}"),
                    self.pos(),
                ))
            }
        };
        self.bump();
        Ok(t)
    }

    fn module(&mut self) -> Result<Module> {
        let mut m = Module::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Extern => m.externs.push(self.extern_def()?),
                Tok::Fn => m.fns.push(self.fn_def()?),
                other => {
                    return Err(LangError::new(
                        format!("expected `fn` or `extern`, found {other:?}"),
                        self.pos(),
                    ))
                }
            }
        }
        Ok(m)
    }

    fn extern_def(&mut self) -> Result<ExternDef> {
        let pos = self.pos();
        self.expect(&Tok::Extern, "`extern`")?;
        let name = self.ident("kernel name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.ty()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Arrow, "`->`")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut outputs = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                outputs.push(self.ty()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(ExternDef {
            name,
            params,
            outputs,
            pos,
        })
    }

    fn binding(&mut self) -> Result<Binding> {
        let pos = self.pos();
        let name = self.ident("a binding name")?;
        self.expect(&Tok::Colon, "`:`")?;
        let ty = self.ty()?;
        Ok(Binding { name, ty, pos })
    }

    fn fn_def(&mut self) -> Result<FnDef> {
        let pos = self.pos();
        self.expect(&Tok::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.binding()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Arrow, "`->`")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut outputs = Vec::new();
        loop {
            outputs.push(self.binding()?);
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            outputs,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let names = self.pattern()?;
                self.expect(&Tok::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Let { names, value, pos })
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                let then_blk = self.block()?;
                let else_blk = if self.peek() == &Tok::Else {
                    self.bump();
                    if self.peek() == &Tok::If {
                        // else if: wrap the nested if as a one-statement block.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    pos,
                })
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Tok::LParen => {
                // Multi-assignment: (a, b) = f(x);
                let names = self.pattern()?;
                self.expect(&Tok::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Assign { names, value, pos })
            }
            Tok::Ident(_) => {
                let name = self.ident("a variable")?;
                self.expect(&Tok::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Assign {
                    names: vec![name],
                    value,
                    pos,
                })
            }
            other => Err(LangError::new(
                format!("expected a statement, found {other:?}"),
                pos,
            )),
        }
    }

    fn pattern(&mut self) -> Result<Vec<String>> {
        if self.peek() == &Tok::LParen {
            self.bump();
            let mut names = vec![self.ident("a binding name")?];
            while self.peek() == &Tok::Comma {
                self.bump();
                names.push(self.ident("a binding name")?);
            }
            self.expect(&Tok::RParen, "`)`")?;
            Ok(names)
        } else {
            Ok(vec![self.ident("a binding name")?])
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            let pos = self.pos();
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            Tok::Minus => {
                let pos = self.pos();
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    pos,
                })
            }
            Tok::Bang => {
                let pos = self.pos();
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    pos,
                })
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v, pos))
            }
            Tok::Bool(v) => {
                self.bump();
                Ok(Expr::Bool(v, pos))
            }
            // Type keywords double as cast functions: float(x), int(x), bool(x).
            Tok::TyFloat | Tok::TyInt | Tok::TyBool => {
                let name = match self.bump() {
                    Tok::TyFloat => "float",
                    Tok::TyInt => "int",
                    Tok::TyBool => "bool",
                    _ => unreachable!(),
                };
                self.expect(&Tok::LParen, "`(`")?;
                let args = self.args()?;
                Ok(Expr::Call {
                    name: name.to_string(),
                    args,
                    pos,
                })
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let args = self.args()?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(LangError::new(
                format!("expected an expression, found {other:?}"),
                pos,
            )),
        }
    }

    /// Comma-separated arguments up to the closing paren (consumed).
    fn args(&mut self) -> Result<Vec<Expr>> {
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIB: &str = r#"
        fn fibonacci(n: int) -> (out: int) {
            if n <= 1 {
                out = 1;
            } else {
                let left = fibonacci(n - 2);
                let right = fibonacci(n - 1);
                out = left + right;
            }
        }
    "#;

    #[test]
    fn parses_fibonacci() {
        let m = parse(FIB).unwrap();
        assert_eq!(m.fns.len(), 1);
        let f = &m.fns[0];
        assert_eq!(f.name, "fibonacci");
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.outputs.len(), 1);
        assert!(matches!(f.body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_externs() {
        let m = parse("extern grad(vec) -> (vec);\nextern logp(vec) -> (float);").unwrap();
        assert_eq!(m.externs.len(), 2);
        assert_eq!(m.externs[0].params, vec![Ty::Vec]);
        assert_eq!(m.externs[1].outputs, vec![Ty::Float]);
    }

    #[test]
    fn parses_multi_assignment() {
        let src = r#"
            fn f(rng: int) -> (u: float, rng2: int) {
                (u, rng2) = uniform(rng);
            }
        "#;
        let m = parse(src).unwrap();
        match &m.fns[0].body[0] {
            Stmt::Assign { names, .. } => assert_eq!(names, &["u", "rng2"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_let_multi() {
        let src = "fn f(rng: int) -> (r: int) { let (u, r2) = uniform(rng); r = r2; }";
        let m = parse(src).unwrap();
        assert!(matches!(&m.fns[0].body[0], Stmt::Let { names, .. } if names.len() == 2));
    }

    #[test]
    fn precedence_is_conventional() {
        let src = "fn f(a: float, b: float, c: float) -> (r: bool) { r = a + b * c < a || !(a < b) && a < c; }";
        let m = parse(src).unwrap();
        // Top must be ||.
        match &m.fns[0].body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary { op: BinOp::Or, .. } => {}
                other => panic!("expected ||, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            fn f(x: int) -> (r: int) {
                if x < 0 { r = 0; } else if x < 10 { r = 1; } else { r = 2; }
            }
        "#;
        let m = parse(src).unwrap();
        match &m.fns[0].body[0] {
            Stmt::If { else_blk, .. } => {
                assert_eq!(else_blk.len(), 1);
                assert!(matches!(else_blk[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cast_calls_parse() {
        let src = "fn f(x: int) -> (r: float) { r = float(x) * 2.0; }";
        let m = parse(src).unwrap();
        assert_eq!(m.fns.len(), 1);
    }

    #[test]
    fn while_loop_parses() {
        let src = "fn f(n: int) -> (i: int) { i = 0; while i < n { i = i + 1; } }";
        let m = parse(src).unwrap();
        assert!(matches!(m.fns[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("fn f( -> ()").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse("fn f(x: int) -> (y: int) { y = x }").is_err());
    }
}
