//! Seeded random generation of control-flow-heavy `lsab` programs, for
//! differential testing of the static verifier against the runtime VMs.
//!
//! [`gen_program`] maps a `u64` seed deterministically to a program
//! plus the concrete [`TensorSpec`]s of its inputs. Generated programs
//! exercise the constructs the verifier reasons about: straight-line
//! arithmetic over mixed dtypes and element shapes (scalar and `[2]`
//! vector), data-dependent `if`/`else`, bounded counter `while` loops,
//! and acyclic cross-function calls. Well-typed programs (the default)
//! are built so every op type-checks and every output is definitely
//! assigned; with probability ~1/4 the generator instead injects one
//! deliberately ill-typed op and sets `expect_reject`, producing a
//! negative test for the verifier.
//!
//! The generator deliberately avoids: `i64` multiplication (debug-mode
//! overflow panics under long chains), non-scalar branch conditions
//! (statically rejected), recursion (so stack bounds stay finite), and
//! unbounded loops (loops are counter-bounded by a constant ≤ 3).

use autobatch_ir::analysis::{AbsDType, TensorSpec};
use autobatch_ir::build::{FunctionBuilder, ProgramBuilder};
use autobatch_ir::lsab::Program;
use autobatch_ir::{FuncId, Prim, Var};

/// A generated program with its input specs and expected verdict.
#[derive(Debug)]
pub struct GeneratedProgram {
    /// The program.
    pub program: Program,
    /// Concrete specs for the entry function's inputs.
    pub inputs: Vec<TensorSpec>,
    /// Whether the static verifier is expected to reject this program
    /// (an ill-typed op was injected).
    pub expect_reject: bool,
}

/// Xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dt {
    F64,
    I64,
}

/// A concretely-typed variable in the generator's pool: dtype plus
/// whether its element shape is `[2]` (vs scalar).
#[derive(Debug, Clone)]
struct TypedVar {
    var: Var,
    dt: Dt,
    vec: bool,
}

/// A function's interface: parameter and output specs.
#[derive(Debug, Clone)]
struct Iface {
    params: Vec<(Dt, bool)>,
    outputs: Vec<(Dt, bool)>,
}

fn unary_ops(dt: Dt) -> &'static [Prim] {
    match dt {
        Dt::F64 => &[
            Prim::Id,
            Prim::Neg,
            Prim::Abs,
            Prim::Square,
            Prim::Sigmoid,
            Prim::Tanh,
            Prim::Sin,
            Prim::Cos,
        ],
        // No i64 Mul anywhere (debug overflow); NegI and Id are safe.
        Dt::I64 => &[Prim::Id, Prim::NegI],
    }
}

fn binary_ops(dt: Dt) -> &'static [Prim] {
    match dt {
        Dt::F64 => &[Prim::Add, Prim::Sub, Prim::Mul, Prim::Min2, Prim::Max2],
        Dt::I64 => &[Prim::Add, Prim::Sub, Prim::Min2, Prim::Max2],
    }
}

/// Pool indices of vars matching `dt` and, when given, `vec`.
fn matching(pool: &[TypedVar], dt: Dt, vec: Option<bool>) -> Vec<usize> {
    pool.iter()
        .enumerate()
        .filter(|(_, v)| v.dt == dt && vec.is_none_or(|w| v.vec == w))
        .map(|(i, _)| i)
        .collect()
}

/// Emit an op whose result has exactly spec `(dt, vec)`, writing it
/// into `target`. Falls back to `Id` of a same-spec var (the target
/// itself is always in the pool, so a candidate always exists).
fn assign_spec(rng: &mut Rng, fb: &mut FunctionBuilder, pool: &[TypedVar], target: &TypedVar) {
    let dt = target.dt;
    // Binary attempt: operands of dt whose broadcast is target's shape.
    if rng.chance(1, 2) {
        let (a_idx, b_idx) = if target.vec {
            let vecs = matching(pool, dt, Some(true));
            let any = matching(pool, dt, None);
            if vecs.is_empty() {
                (None, None)
            } else {
                (
                    Some(vecs[rng.below(vecs.len())]),
                    Some(any[rng.below(any.len())]),
                )
            }
        } else {
            let scalars = matching(pool, dt, Some(false));
            if scalars.is_empty() {
                (None, None)
            } else {
                (
                    Some(scalars[rng.below(scalars.len())]),
                    Some(scalars[rng.below(scalars.len())]),
                )
            }
        };
        if let (Some(a), Some(b)) = (a_idx, b_idx) {
            let ops = binary_ops(dt);
            let prim = ops[rng.below(ops.len())].clone();
            let (a, b) = if rng.chance(1, 2) { (a, b) } else { (b, a) };
            fb.assign(
                &target.var,
                prim,
                &[pool[a].var.clone(), pool[b].var.clone()],
            );
            return;
        }
    }
    // Unary fallback: a same-spec source always exists (the target).
    let srcs = matching(pool, dt, Some(target.vec));
    let src = srcs[rng.below(srcs.len())];
    let ops = unary_ops(dt);
    let prim = ops[rng.below(ops.len())].clone();
    fb.assign(&target.var, prim, &[pool[src].var.clone()]);
}

/// Emit a fresh temp with a random spec derived from the pool; returns
/// its typed entry, or `None` when no operands fit.
fn fresh_temp(rng: &mut Rng, fb: &mut FunctionBuilder, pool: &[TypedVar]) -> Option<TypedVar> {
    let dt = if rng.chance(1, 2) { Dt::F64 } else { Dt::I64 };
    let cands = matching(pool, dt, None);
    if cands.is_empty() {
        return None;
    }
    let a = cands[rng.below(cands.len())];
    if rng.chance(1, 2) {
        let b = cands[rng.below(cands.len())];
        let ops = binary_ops(dt);
        let prim = ops[rng.below(ops.len())].clone();
        let out = fb.emit(prim, &[pool[a].var.clone(), pool[b].var.clone()]);
        Some(TypedVar {
            var: out,
            dt,
            vec: pool[a].vec || pool[b].vec,
        })
    } else {
        let ops = unary_ops(dt);
        let prim = ops[rng.below(ops.len())].clone();
        let out = fb.emit(prim, &[pool[a].var.clone()]);
        Some(TypedVar {
            var: out,
            dt,
            vec: pool[a].vec,
        })
    }
}

/// Emit a scalar bool condition: a comparison of two same-dtype scalars.
fn scalar_cond(rng: &mut Rng, fb: &mut FunctionBuilder, pool: &[TypedVar]) -> Var {
    for &dt in &[Dt::F64, Dt::I64] {
        let scalars = matching(pool, dt, Some(false));
        if !scalars.is_empty() {
            let a = scalars[rng.below(scalars.len())];
            let b = scalars[rng.below(scalars.len())];
            let cmps = [Prim::Lt, Prim::Le, Prim::Gt, Prim::Ge];
            let prim = cmps[rng.below(cmps.len())].clone();
            return fb.emit(prim, &[pool[a].var.clone(), pool[b].var.clone()]);
        }
    }
    fb.const_bool(true)
}

/// Emit one ill-typed op; the verifier must reject the program.
fn inject_ill_typed(rng: &mut Rng, fb: &mut FunctionBuilder, pool: &[TypedVar]) {
    let f64s = matching(pool, Dt::F64, None);
    let i64s = matching(pool, Dt::I64, None);
    let choice = rng.below(3);
    if choice == 0 && !f64s.is_empty() && !i64s.is_empty() {
        // Mixed-dtype arithmetic.
        let a = f64s[rng.below(f64s.len())];
        let b = i64s[rng.below(i64s.len())];
        fb.emit(Prim::Add, &[pool[a].var.clone(), pool[b].var.clone()]);
    } else if choice == 1 && !f64s.is_empty() {
        // Logic op on numerics.
        let a = f64s[rng.below(f64s.len())];
        fb.emit(Prim::And, &[pool[a].var.clone(), pool[a].var.clone()]);
    } else if let Some(&a) = i64s.first() {
        // Reduction of an integer (SumElems is f64-only).
        fb.emit(Prim::SumElems, &[pool[a].var.clone()]);
    } else if let Some(a) = f64s.iter().copied().find(|&i| !pool[i].vec) {
        // Reduction of a scalar element (would consume the batch axis).
        fb.emit(Prim::SumElems, &[pool[a].var.clone()]);
    } else {
        // Only f64 vectors in scope: a logic op on them is still ill-typed.
        fb.emit(
            Prim::And,
            &[pool[f64s[0]].var.clone(), pool[f64s[0]].var.clone()],
        );
    }
}

/// Generate the body of one function. `callees` lists later functions
/// (their ids and interfaces) this one may call.
fn gen_body(
    rng: &mut Rng,
    fb: &mut FunctionBuilder,
    iface: &Iface,
    callees: &[(FuncId, Iface)],
    inject: bool,
) {
    let mut pool: Vec<TypedVar> = Vec::new();
    for (i, &(dt, vec)) in iface.params.iter().enumerate() {
        pool.push(TypedVar {
            var: fb.param(i),
            dt,
            vec,
        });
    }
    // A couple of constants so both dtypes always have scalar members.
    for _ in 0..2 {
        let v = if rng.chance(1, 2) {
            let c = fb.const_f64((rng.below(5) as f64) - 2.0);
            TypedVar {
                var: c,
                dt: Dt::F64,
                vec: false,
            }
        } else {
            let c = fb.const_i64((rng.below(5) as i64) - 2);
            TypedVar {
                var: c,
                dt: Dt::I64,
                vec: false,
            }
        };
        pool.push(v);
    }
    // Definite assignment: initialize every output up front. Vector
    // outputs copy a vector param of the same dtype (the interface
    // generator guarantees one exists); scalars take a constant.
    for (i, &(dt, vec)) in iface.outputs.iter().enumerate() {
        let out = fb.output(i);
        if vec {
            let srcs = matching(&pool, dt, Some(true));
            fb.assign(&out, Prim::Id, &[pool[srcs[0]].var.clone()]);
        } else {
            match dt {
                Dt::F64 => {
                    let c = fb.const_f64(rng.below(3) as f64);
                    fb.assign(&out, Prim::Id, &[c]);
                }
                Dt::I64 => {
                    let c = fb.const_i64(rng.below(3) as i64);
                    fb.assign(&out, Prim::Id, &[c]);
                }
            }
        }
        pool.push(TypedVar { var: out, dt, vec });
    }
    if inject {
        inject_ill_typed(rng, fb, &pool);
    }
    let n_steps = 2 + rng.below(6);
    let mut loops_left = 1;
    for _ in 0..n_steps {
        match rng.below(10) {
            // Straight-line: new temp or overwrite an existing var.
            0..=4 => {
                if rng.chance(1, 2) {
                    if let Some(tv) = fresh_temp(rng, fb, &pool) {
                        pool.push(tv);
                    }
                } else {
                    let t = rng.below(pool.len());
                    let target = pool[t].clone();
                    assign_spec(rng, fb, &pool, &target);
                }
            }
            // Data-dependent if/else: both arms overwrite the same
            // existing vars (specs preserved), so the pool stays
            // definitely assigned at the join.
            5 | 6 => {
                let cond = scalar_cond(rng, fb, &pool);
                let tb = fb.new_block();
                let eb = fb.new_block();
                let join = fb.new_block();
                fb.branch(&cond, tb, eb);
                let n_writes = 1 + rng.below(2);
                let targets: Vec<TypedVar> = (0..n_writes)
                    .map(|_| pool[rng.below(pool.len())].clone())
                    .collect();
                fb.switch_to(tb);
                for t in &targets {
                    assign_spec(rng, fb, &pool, t);
                }
                fb.jump(join);
                fb.switch_to(eb);
                for t in &targets {
                    assign_spec(rng, fb, &pool, t);
                }
                fb.jump(join);
                fb.switch_to(join);
            }
            // Bounded counter loop: at most 3 iterations.
            7 if loops_left > 0 => {
                loops_left -= 1;
                let bound = fb.const_i64(1 + rng.below(3) as i64);
                let one = fb.const_i64(1);
                let i = Var::new(format!("ctr{}", rng.below(1 << 30)));
                let zero = fb.const_i64(0);
                fb.assign(&i, Prim::Id, &[zero]);
                let n_writes = 1 + rng.below(2);
                let targets: Vec<TypedVar> = (0..n_writes)
                    .map(|_| pool[rng.below(pool.len())].clone())
                    .collect();
                let hb = fb.new_block();
                let bb = fb.new_block();
                let xb = fb.new_block();
                fb.jump(hb);
                fb.switch_to(hb);
                let c = fb.emit(Prim::Lt, &[i.clone(), bound]);
                fb.branch(&c, bb, xb);
                fb.switch_to(bb);
                for t in &targets {
                    assign_spec(rng, fb, &pool, t);
                }
                fb.assign(&i, Prim::Add, &[i.clone(), one]);
                fb.jump(hb);
                fb.switch_to(xb);
            }
            // Call a later function with exactly-matching arguments.
            _ => {
                if callees.is_empty() {
                    continue;
                }
                let (id, ci) = &callees[rng.below(callees.len())];
                let mut args = Vec::new();
                let mut ok = true;
                for &(dt, vec) in &ci.params {
                    let cands = matching(&pool, dt, Some(vec));
                    if cands.is_empty() {
                        ok = false;
                        break;
                    }
                    args.push(pool[cands[rng.below(cands.len())]].var.clone());
                }
                if !ok {
                    continue;
                }
                let outs = fb.call(*id, &args, ci.outputs.len());
                for (v, &(dt, vec)) in outs.into_iter().zip(&ci.outputs) {
                    pool.push(TypedVar { var: v, dt, vec });
                }
            }
        }
    }
    fb.ret();
}

/// Pick an interface. Vector outputs are only allowed when a vector
/// param of the same dtype exists (so definite initialization can copy
/// it).
fn gen_iface(rng: &mut Rng) -> Iface {
    let n_params = 1 + rng.below(3);
    let params: Vec<(Dt, bool)> = (0..n_params)
        .map(|_| {
            (
                if rng.chance(1, 2) { Dt::F64 } else { Dt::I64 },
                rng.chance(1, 3),
            )
        })
        .collect();
    let n_outs = 1 + rng.below(2);
    let outputs: Vec<(Dt, bool)> = (0..n_outs)
        .map(|_| {
            let dt = if rng.chance(1, 2) { Dt::F64 } else { Dt::I64 };
            let vec = rng.chance(1, 3) && params.contains(&(dt, true));
            (dt, vec)
        })
        .collect();
    Iface { params, outputs }
}

/// Deterministically generate a program from `seed`.
///
/// # Panics
///
/// Panics if the builder rejects the generated program — that is a bug
/// in the generator, not in the caller.
pub fn gen_program(seed: u64) -> GeneratedProgram {
    let mut rng = Rng::new(seed);
    let expect_reject = rng.chance(1, 4);
    let n_funcs = 1 + rng.below(3);
    let ifaces: Vec<Iface> = (0..n_funcs).map(|_| gen_iface(&mut rng)).collect();
    let mut pb = ProgramBuilder::new();
    let ids: Vec<FuncId> = ifaces
        .iter()
        .enumerate()
        .map(|(i, iface)| {
            let params: Vec<String> = (0..iface.params.len()).map(|j| format!("p{j}")).collect();
            let outs: Vec<String> = (0..iface.outputs.len()).map(|j| format!("o{j}")).collect();
            let p_refs: Vec<&str> = params.iter().map(String::as_str).collect();
            let o_refs: Vec<&str> = outs.iter().map(String::as_str).collect();
            pb.declare(&format!("g{i}"), &p_refs, &o_refs)
        })
        .collect();
    // Define in order; function i may call any j > i (acyclic).
    for i in 0..n_funcs {
        let callees: Vec<(FuncId, Iface)> = (i + 1..n_funcs)
            .map(|j| (ids[j], ifaces[j].clone()))
            .collect();
        let iface = ifaces[i].clone();
        let inject = expect_reject && i == 0;
        let rng_ref = &mut rng;
        pb.define(ids[i], |fb| {
            gen_body(rng_ref, fb, &iface, &callees, inject);
        });
    }
    let program = pb.finish(ids[0]).expect("generated program is well-formed");
    let inputs = ifaces[0]
        .params
        .iter()
        .map(|&(dt, vec)| {
            TensorSpec::new(
                match dt {
                    Dt::F64 => AbsDType::F64,
                    Dt::I64 => AbsDType::I64,
                },
                if vec { vec![2] } else { vec![] },
            )
        })
        .collect();
    GeneratedProgram {
        program,
        inputs,
        expect_reject,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_ir::analysis::{analyze_lsab, infer_lsab_signature};

    #[test]
    fn generation_is_deterministic() {
        let a = gen_program(42);
        let b = gen_program(42);
        assert_eq!(format!("{:?}", a.program), format!("{:?}", b.program));
        assert_eq!(a.expect_reject, b.expect_reject);
    }

    /// An injected ill-typed op must be caught by verification against
    /// the generator's concrete input specs (some injections, like a
    /// logic op on two inputs, are only ill-typed *given* those specs —
    /// at program level they merely infer a bool constraint).
    #[test]
    fn well_typed_programs_verify_and_ill_typed_ones_do_not() {
        let mut accepted = 0;
        let mut rejected_as_expected = 0;
        for seed in 0..200 {
            let g = gen_program(seed);
            let program_ok = analyze_lsab(&g.program).ok();
            let concrete = infer_lsab_signature(&g.program, &g.inputs);
            if g.expect_reject {
                assert!(
                    !(program_ok && concrete.is_ok()),
                    "seed {seed}: injected ill-typed op escaped the verifier"
                );
                rejected_as_expected += 1;
            } else {
                assert!(
                    program_ok,
                    "seed {seed}: clean program rejected: {:?}",
                    analyze_lsab(&g.program).diagnostics
                );
                assert!(
                    concrete.is_ok(),
                    "seed {seed}: clean program's inputs rejected: {:?}",
                    concrete.err()
                );
                accepted += 1;
            }
        }
        assert!(accepted > 100, "too few clean programs: {accepted}");
        assert!(rejected_as_expected > 10, "too few negative cases");
    }
}
