//! Diagnostics for the surface language.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compile error in a surface-language program: lexing, parsing, type
/// checking, or lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// What went wrong.
    pub message: String,
    /// Where (best effort).
    pub pos: Pos,
}

impl LangError {
    /// Construct an error at a position.
    pub fn new(message: impl Into<String>, pos: Pos) -> LangError {
        LangError {
            message: message.into(),
            pos,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LangError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::new("unexpected token", Pos { line: 3, col: 7 });
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }
}
