//! Tokens and the lexer.

use crate::error::{LangError, Pos, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// Keyword `fn`.
    Fn,
    /// Keyword `extern`.
    Extern,
    /// Keyword `let`.
    Let,
    /// Keyword `if`.
    If,
    /// Keyword `else`.
    Else,
    /// Keyword `while`.
    While,
    /// Type keyword `float`.
    TyFloat,
    /// Type keyword `int`.
    TyInt,
    /// Type keyword `bool`.
    TyBool,
    /// Type keyword `vec`.
    TyVec,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `->`.
    Arrow,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Lex a whole source string. `//` comments run to end of line.
///
/// # Errors
///
/// Returns a [`LangError`] on malformed numbers or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($tok:expr, $pos:expr) => {
            out.push(Token {
                tok: $tok,
                pos: $pos,
            })
        };
    }
    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' => {
                push!(Tok::Slash, pos);
                i += 1;
                col += 1;
            }
            '(' => {
                push!(Tok::LParen, pos);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Tok::RParen, pos);
                i += 1;
                col += 1;
            }
            '{' => {
                push!(Tok::LBrace, pos);
                i += 1;
                col += 1;
            }
            '}' => {
                push!(Tok::RBrace, pos);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma, pos);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(Tok::Semi, pos);
                i += 1;
                col += 1;
            }
            ':' => {
                push!(Tok::Colon, pos);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(Tok::Plus, pos);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Tok::Star, pos);
                i += 1;
                col += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    push!(Tok::Arrow, pos);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Minus, pos);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Tok::Le, pos);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, pos);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Tok::Ge, pos);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, pos);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Tok::EqEq, pos);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Assign, pos);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Tok::Ne, pos);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Bang, pos);
                    i += 1;
                    col += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    push!(Tok::AndAnd, pos);
                    i += 2;
                    col += 2;
                } else {
                    return Err(LangError::new("expected `&&`", pos));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    push!(Tok::OrOr, pos);
                    i += 2;
                    col += 2;
                } else {
                    return Err(LangError::new("expected `||`", pos));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == '.'
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let len = (i - start) as u32;
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| LangError::new(format!("bad float `{text}`"), pos))?;
                    push!(Tok::Float(v), pos);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| LangError::new(format!("bad integer `{text}`"), pos))?;
                    push!(Tok::Int(v), pos);
                }
                col += len;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let len = (i - start) as u32;
                let tok = match text.as_str() {
                    "fn" => Tok::Fn,
                    "extern" => Tok::Extern,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "true" => Tok::Bool(true),
                    "false" => Tok::Bool(false),
                    "float" => Tok::TyFloat,
                    "int" => Tok::TyInt,
                    "bool" => Tok::TyBool,
                    "vec" => Tok::TyVec,
                    _ => Tok::Ident(text),
                };
                push!(tok, pos);
                col += len;
            }
            other => {
                return Err(LangError::new(
                    format!("unexpected character `{other}`"),
                    pos,
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_symbols_and_keywords() {
        assert_eq!(
            toks("fn f(x: int) -> (y: int) { }"),
            vec![
                Tok::Fn,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Colon,
                Tok::TyInt,
                Tok::RParen,
                Tok::Arrow,
                Tok::LParen,
                Tok::Ident("y".into()),
                Tok::Colon,
                Tok::TyInt,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 1e-3 10.0 7"),
            vec![
                Tok::Int(1),
                Tok::Float(2.5),
                Tok::Float(1e-3),
                Tok::Float(10.0),
                Tok::Int(7),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a <= b && c != d || !e == -f"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::AndAnd,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::OrOr,
                Tok::Bang,
                Tok::Ident("e".into()),
                Tok::EqEq,
                Tok::Minus,
                Tok::Ident("f".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x // comment here\ny"),
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("a # b").is_err());
        assert!(lex("a & b").is_err());
    }
}
