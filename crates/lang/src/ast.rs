//! Abstract syntax of the surface language.
//!
//! The language is deliberately the paper's implied source fragment: an
//! imperative, statically typed, first-order language with `if`/`else`,
//! `while`, multi-output functions, recursion, a small builtin
//! vocabulary (math, per-member vector ops, counter-based RNG), and
//! `extern` declarations for model kernels such as `grad`.

use crate::error::Pos;

/// A surface type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Per-member `f64` scalar.
    Float,
    /// Per-member `i64` scalar.
    Int,
    /// Per-member boolean.
    Bool,
    /// Per-member `f64` vector.
    Vec,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Float => write!(f, "float"),
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Vec => write!(f, "vec"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Float literal.
    Float(f64, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Call of a user function, builtin, or extern kernel.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
}

impl Expr {
    /// The position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Float(_, p)
            | Expr::Bool(_, p)
            | Expr::Var(_, p)
            | Expr::Unary { pos: p, .. }
            | Expr::Binary { pos: p, .. }
            | Expr::Call { pos: p, .. } => *p,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;` or `let (a, b) = f(..);`
    Let {
        /// Bound names (more than one for multi-output calls).
        names: Vec<String>,
        /// The initializer.
        value: Expr,
        /// Position.
        pos: Pos,
    },
    /// `x = e;` or `(a, b) = f(..);` on already-declared variables.
    Assign {
        /// Target names.
        names: Vec<String>,
        /// The value.
        value: Expr,
        /// Position.
        pos: Pos,
    },
    /// `if cond { .. } else { .. }`.
    If {
        /// Condition (scalar bool).
        cond: Expr,
        /// Then branch.
        then_blk: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_blk: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
    /// `while cond { .. }`.
    While {
        /// Condition (scalar bool).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
}

/// A named, typed binding (parameter or output).
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Position.
    pub pos: Pos,
}

/// A function definition. Functions return by assigning their named
/// outputs; control falling off the end returns them.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Binding>,
    /// Outputs.
    pub outputs: Vec<Binding>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position.
    pub pos: Pos,
}

/// An extern kernel declaration, e.g. `extern grad(vec) -> (vec);`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDef {
    /// Kernel name (must be registered in the runtime's registry).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Output types.
    pub outputs: Vec<Ty>,
    /// Position.
    pub pos: Pos,
}

/// A whole module: extern declarations plus function definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Extern kernels.
    pub externs: Vec<ExternDef>,
    /// Functions.
    pub fns: Vec<FnDef>,
}

impl Module {
    /// Find a function by name.
    pub fn fn_by_name(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// Find an extern by name.
    pub fn extern_by_name(&self, name: &str) -> Option<&ExternDef> {
        self.externs.iter().find(|e| e.name == name)
    }
}
