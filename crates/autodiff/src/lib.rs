//! # autobatch-autodiff
//!
//! A compact reverse-mode automatic differentiation tape over
//! [`Tensor`]s, used to derive and cross-check the gradients of the
//! target log-densities in `autobatch-models` (the NUTS workloads of the
//! paper's §4 evaluation).
//!
//! The tape covers exactly the operation vocabulary those densities
//! need: elementwise arithmetic, `dot`/`sum` reductions, `matvec` against
//! constant matrices, and the usual scalar nonlinearities. Values are
//! tensors of shape `[d]` (vectors) or `[]` (scalars); `backward` seeds
//! the output with 1 and accumulates adjoints by the standard reverse
//! sweep.
//!
//! # Examples
//!
//! ```
//! use autobatch_autodiff::Tape;
//! use autobatch_tensor::Tensor;
//!
//! // f(x) = x · x  ⇒  ∇f = 2x
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::from_f64(&[1.0, 2.0, 3.0], &[3])?);
//! let y = tape.dot(x, x)?;
//! let grads = tape.backward(y)?;
//! assert_eq!(grads[&x].as_f64()?, &[2.0, 4.0, 6.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;

use autobatch_tensor::{Result, Tensor, TensorError};

/// Handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    Input,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Neg(NodeId),
    Scale(NodeId, f64),
    AddConst(NodeId),
    Dot(NodeId, NodeId),
    Sum(NodeId),
    MatVec(usize, NodeId),
    MatTVec(usize, NodeId),
    Exp(NodeId),
    Ln(NodeId),
    Sigmoid(NodeId),
    Softplus(NodeId),
    Square(NodeId),
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
}

/// A reverse-mode differentiation tape.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    consts: Vec<Tensor>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.nodes.push(Node { op, value });
        NodeId(self.nodes.len() - 1)
    }

    /// Register an input (differentiable leaf).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value)
    }

    /// Register a constant matrix for [`Tape::matvec`]/[`Tape::matvec_t`].
    pub fn constant_matrix(&mut self, m: Tensor) -> usize {
        self.consts.push(m);
        self.consts.len() - 1
    }

    /// Elementwise `a + b`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let v = self.value(a).add(self.value(b))?;
        Ok(self.push(Op::Add(a, b), v))
    }

    /// Elementwise `a - b`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let v = self.value(a).sub(self.value(b))?;
        Ok(self.push(Op::Sub(a, b), v))
    }

    /// Elementwise `a * b`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let v = self.value(a).mul(self.value(b))?;
        Ok(self.push(Op::Mul(a, b), v))
    }

    /// Elementwise negation.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn neg(&mut self, a: NodeId) -> Result<NodeId> {
        let v = self.value(a).neg()?;
        Ok(self.push(Op::Neg(a), v))
    }

    /// `c * a` for a scalar constant `c`.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn scale(&mut self, a: NodeId, c: f64) -> Result<NodeId> {
        let v = self.value(a).mul(&Tensor::scalar(c))?;
        Ok(self.push(Op::Scale(a, c), v))
    }

    /// `a + c` for a scalar constant `c`.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn add_const(&mut self, a: NodeId, c: f64) -> Result<NodeId> {
        let v = self.value(a).add(&Tensor::scalar(c))?;
        Ok(self.push(Op::AddConst(a), v))
    }

    /// Dot product over the whole vector: `[d] × [d] → []`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn dot(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let s = self.value(a).mul(self.value(b))?.sum_all()?;
        Ok(self.push(Op::Dot(a, b), Tensor::scalar(s)))
    }

    /// Sum of all elements: `[d] → []`.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn sum(&mut self, a: NodeId) -> Result<NodeId> {
        let s = self.value(a).sum_all()?;
        Ok(self.push(Op::Sum(a), Tensor::scalar(s)))
    }

    /// `M · a` for a registered constant matrix.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn matvec(&mut self, m: usize, a: NodeId) -> Result<NodeId> {
        let v = self.consts[m].matvec(self.value(a))?;
        Ok(self.push(Op::MatVec(m, a), v))
    }

    /// `Mᵀ · a` for a registered constant matrix.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn matvec_t(&mut self, m: usize, a: NodeId) -> Result<NodeId> {
        let v = self.consts[m].transpose()?.matvec(self.value(a))?;
        Ok(self.push(Op::MatTVec(m, a), v))
    }

    /// Elementwise exponential.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn exp(&mut self, a: NodeId) -> Result<NodeId> {
        let v = self.value(a).exp()?;
        Ok(self.push(Op::Exp(a), v))
    }

    /// Elementwise natural log.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn ln(&mut self, a: NodeId) -> Result<NodeId> {
        let v = self.value(a).ln()?;
        Ok(self.push(Op::Ln(a), v))
    }

    /// Elementwise logistic sigmoid.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn sigmoid(&mut self, a: NodeId) -> Result<NodeId> {
        let v = self.value(a).sigmoid()?;
        Ok(self.push(Op::Sigmoid(a), v))
    }

    /// Elementwise stable `log(1 + exp(x))`.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn softplus(&mut self, a: NodeId) -> Result<NodeId> {
        let v = self.value(a).softplus()?;
        Ok(self.push(Op::Softplus(a), v))
    }

    /// Elementwise square.
    ///
    /// # Errors
    ///
    /// Propagates dtype errors.
    pub fn square(&mut self, a: NodeId) -> Result<NodeId> {
        let v = self.value(a).square()?;
        Ok(self.push(Op::Square(a), v))
    }

    /// Reverse sweep from a scalar output; returns adjoints of all
    /// [`Tape::input`] nodes.
    ///
    /// # Errors
    ///
    /// Returns an error if `output` is not scalar (single-element) or on
    /// shape violations during accumulation.
    pub fn backward(&self, output: NodeId) -> Result<BTreeMap<NodeId, Tensor>> {
        if self.value(output).len() != 1 {
            return Err(TensorError::DataLength {
                expected: 1,
                got: self.value(output).len(),
            });
        }
        let mut adj: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        adj[output.0] = Some(Tensor::full(self.value(output).shape(), 1.0));
        for i in (0..self.nodes.len()).rev() {
            let Some(g) = adj[i].clone() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Add(a, b) => {
                    accumulate(&mut adj, *a, reduce_to(&g, self.value(*a))?)?;
                    accumulate(&mut adj, *b, reduce_to(&g, self.value(*b))?)?;
                }
                Op::Sub(a, b) => {
                    accumulate(&mut adj, *a, reduce_to(&g, self.value(*a))?)?;
                    accumulate(&mut adj, *b, reduce_to(&g.neg()?, self.value(*b))?)?;
                }
                Op::Mul(a, b) => {
                    let ga = g.mul(self.value(*b))?;
                    let gb = g.mul(self.value(*a))?;
                    accumulate(&mut adj, *a, reduce_to(&ga, self.value(*a))?)?;
                    accumulate(&mut adj, *b, reduce_to(&gb, self.value(*b))?)?;
                }
                Op::Neg(a) => accumulate(&mut adj, *a, g.neg()?)?,
                Op::Scale(a, c) => {
                    accumulate(&mut adj, *a, g.mul(&Tensor::scalar(*c))?)?;
                }
                Op::AddConst(a) => accumulate(&mut adj, *a, g)?,
                Op::Dot(a, b) => {
                    let ga = self.value(*b).mul(&g)?;
                    let gb = self.value(*a).mul(&g)?;
                    accumulate(&mut adj, *a, ga)?;
                    accumulate(&mut adj, *b, gb)?;
                }
                Op::Sum(a) => {
                    let ones = Tensor::full(self.value(*a).shape(), 1.0);
                    accumulate(&mut adj, *a, ones.mul(&g)?)?;
                }
                Op::MatVec(m, a) => {
                    let ga = self.consts[*m].transpose()?.matvec(&g)?;
                    accumulate(&mut adj, *a, ga)?;
                }
                Op::MatTVec(m, a) => {
                    let ga = self.consts[*m].matvec(&g)?;
                    accumulate(&mut adj, *a, ga)?;
                }
                Op::Exp(a) => {
                    accumulate(&mut adj, *a, g.mul(&self.nodes[i].value)?)?;
                }
                Op::Ln(a) => {
                    let inv = Tensor::full(self.value(*a).shape(), 1.0).div(self.value(*a))?;
                    accumulate(&mut adj, *a, g.mul(&inv)?)?;
                }
                Op::Sigmoid(a) => {
                    let s = &self.nodes[i].value;
                    let one_minus = Tensor::full(s.shape(), 1.0).sub(s)?;
                    accumulate(&mut adj, *a, g.mul(&s.mul(&one_minus)?)?)?;
                }
                Op::Softplus(a) => {
                    let s = self.value(*a).sigmoid()?;
                    accumulate(&mut adj, *a, g.mul(&s)?)?;
                }
                Op::Square(a) => {
                    let two_a = self.value(*a).mul(&Tensor::scalar(2.0))?;
                    accumulate(&mut adj, *a, g.mul(&two_a)?)?;
                }
            }
        }
        let mut out = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.op, Op::Input) {
                let grad = adj[i]
                    .clone()
                    .unwrap_or_else(|| Tensor::zeros(node.value.dtype(), node.value.shape()));
                out.insert(NodeId(i), grad);
            }
        }
        Ok(out)
    }
}

/// Reduce an adjoint to the shape of the primal value (reverses the
/// scalar ⊕ vector broadcasting the forward pass may have done).
fn reduce_to(g: &Tensor, like: &Tensor) -> Result<Tensor> {
    if g.shape() == like.shape() {
        return Ok(g.clone());
    }
    if like.len() == 1 {
        // Forward broadcast scalar → vector: reverse sums.
        return Tensor::scalar(g.sum_all()?).reshape(like.shape());
    }
    // Scalar adjoint flowing into a vector primal: spread it.
    Tensor::full(like.shape(), 1.0).mul(g)
}

fn accumulate(adj: &mut [Option<Tensor>], id: NodeId, g: Tensor) -> Result<()> {
    adj[id.0] = Some(match adj[id.0].take() {
        Some(prev) => prev.add(&g)?,
        None => g,
    });
    Ok(())
}

/// Central-difference numerical gradient of `f` at `x` (for tests).
///
/// # Panics
///
/// Panics if `x` is not `f64` or shapes change under perturbation.
pub fn finite_difference<F: Fn(&Tensor) -> f64>(f: F, x: &Tensor, eps: f64) -> Tensor {
    let base = x
        .as_f64()
        .expect("finite_difference needs f64 input")
        .to_vec();
    let mut grad = vec![0.0; base.len()];
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        let mut minus = base.clone();
        minus[i] -= eps;
        let fp = f(&Tensor::from_f64(&plus, x.shape()).expect("shape preserved"));
        let fm = f(&Tensor::from_f64(&minus, x.shape()).expect("shape preserved"));
        grad[i] = (fp - fm) / (2.0 * eps);
    }
    Tensor::from_f64(&grad, x.shape()).expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec3() -> Tensor {
        Tensor::from_f64(&[0.5, -1.0, 2.0], &[3]).unwrap()
    }

    #[test]
    fn quadratic_gradient() {
        let mut t = Tape::new();
        let x = t.input(vec3());
        let y = t.dot(x, x).unwrap();
        let g = t.backward(y).unwrap();
        assert_eq!(g[&x].as_f64().unwrap(), &[1.0, -2.0, 4.0]);
    }

    #[test]
    fn chain_rule_through_nonlinearities() {
        // f(x) = sum(sigmoid(2x)) — check against finite differences.
        let x0 = vec3();
        let f = |x: &Tensor| {
            let mut t = Tape::new();
            let x = t.input(x.clone());
            let s = t.scale(x, 2.0).unwrap();
            let s = t.sigmoid(s).unwrap();
            let y = t.sum(s).unwrap();
            t.value(y).item().unwrap().as_f64().unwrap()
        };
        let mut t = Tape::new();
        let x = t.input(x0.clone());
        let s = t.scale(x, 2.0).unwrap();
        let s = t.sigmoid(s).unwrap();
        let y = t.sum(s).unwrap();
        let g = t.backward(y).unwrap();
        let fd = finite_difference(f, &x0, 1e-6);
        for (a, b) in g[&x].as_f64().unwrap().iter().zip(fd.as_f64().unwrap()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn matvec_gradients() {
        // f(x) = (Mx)·(Mx); ∇f = 2 MᵀMx.
        let m = Tensor::from_f64(&[1.0, 2.0, 0.0, 1.0, -1.0, 1.0], &[2, 3]).unwrap();
        let x0 = vec3();
        let mut t = Tape::new();
        let mid = t.constant_matrix(m.clone());
        let x = t.input(x0.clone());
        let mx = t.matvec(mid, x).unwrap();
        let y = t.dot(mx, mx).unwrap();
        let g = t.backward(y).unwrap();
        let fd = finite_difference(
            |x| {
                let mx = m.matvec(x).unwrap();
                mx.mul(&mx).unwrap().sum_all().unwrap()
            },
            &x0,
            1e-6,
        );
        for (a, b) in g[&x].as_f64().unwrap().iter().zip(fd.as_f64().unwrap()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn mixed_graph_matches_finite_differences() {
        // f(x) = softplus(sum(x)) + 0.5·x·x
        let x0 = vec3();
        let build = |x0: &Tensor, t: &mut Tape| {
            let x = t.input(x0.clone());
            let s = t.sum(x).unwrap();
            let sp = t.softplus(s).unwrap();
            let q = t.dot(x, x).unwrap();
            let hq = t.scale(q, 0.5).unwrap();
            let y = t.add(sp, hq).unwrap();
            (x, y)
        };
        let mut t = Tape::new();
        let (x, y) = build(&x0, &mut t);
        let g = t.backward(y).unwrap();
        let fd = finite_difference(
            |x0| {
                let mut t = Tape::new();
                let (_, y) = build(x0, &mut t);
                t.value(y).item().unwrap().as_f64().unwrap()
            },
            &x0,
            1e-6,
        );
        for (a, b) in g[&x].as_f64().unwrap().iter().zip(fd.as_f64().unwrap()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn unused_input_gets_zero_gradient() {
        let mut t = Tape::new();
        let x = t.input(vec3());
        let z = t.input(vec3());
        let y = t.dot(x, x).unwrap();
        let g = t.backward(y).unwrap();
        assert_eq!(g[&z].as_f64().unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn non_scalar_output_rejected() {
        let mut t = Tape::new();
        let x = t.input(vec3());
        assert!(t.backward(x).is_err());
    }

    #[test]
    fn square_and_addconst() {
        // f(x) = sum((x + 1)²); ∇ = 2(x+1).
        let x0 = vec3();
        let mut t = Tape::new();
        let x = t.input(x0.clone());
        let p = t.add_const(x, 1.0).unwrap();
        let sq = t.square(p).unwrap();
        let y = t.sum(sq).unwrap();
        let g = t.backward(y).unwrap();
        assert_eq!(g[&x].as_f64().unwrap(), &[3.0, 0.0, 6.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // y = x·x + sum(x): adjoints add across uses.
        let x0 = vec3();
        let mut t = Tape::new();
        let x = t.input(x0.clone());
        let d = t.dot(x, x).unwrap();
        let s = t.sum(x).unwrap();
        let y = t.add(d, s).unwrap();
        let g = t.backward(y).unwrap();
        assert_eq!(g[&x].as_f64().unwrap(), &[2.0, -1.0, 5.0]);
    }
}
