//! Chaos suite for the self-healing supervisor: deterministic fault
//! injection (seeded [`FaultPlan`]) must never perturb surviving
//! results or lose a request.
//!
//! The headline property: under any seed and any mix of injected
//! execution errors, admission failures, worker panics, and artificial
//! slowness, every submitted request reaches **exactly one** terminal
//! outcome, every surviving response is **bit-identical** to the
//! fault-free run, and the fleet ends healthy (no poisoned shards).

use std::collections::HashMap;

use autobatch_accel::Backend;
use autobatch_chaos::FaultPlan;
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions};
use autobatch_ir::build::fibonacci_program;
use autobatch_ir::pcab::Program;
use autobatch_serve::{
    AdmissionPolicy, AffinityConfig, Outcome, Request, RequestBudget, SchedulingPolicy, ServeError,
    ShardedServer, Supervisor, SupervisorConfig,
};
use autobatch_tensor::Tensor;
use proptest::prelude::*;

/// Silence the default panic hook for injected worker panics only:
/// libtest cannot capture panic output from the fleet's scoped worker
/// threads, and a chaos run injects hundreds of them. Real panics
/// (assertion failures included) still print normally.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("injected fault") {
                prev(info);
            }
        }));
    });
}

fn fib_program() -> Program {
    let (program, _) = lower(&fibonacci_program(), LoweringOptions::default()).expect("lower");
    program
}

fn fleet(program: &Program, workers: usize, fault: FaultPlan) -> Supervisor<'_> {
    let opts = ExecOptions {
        fault,
        ..ExecOptions::default()
    };
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: 2,
        min_utilization: 1.0,
    };
    let inner = ShardedServer::new(
        program,
        KernelRegistry::new(),
        opts,
        policy,
        workers,
        Backend::hybrid_cpu(),
    )
    .expect("fleet");
    Supervisor::new(inner, SupervisorConfig::default())
}

fn requests(ns: &[i64]) -> Vec<Request> {
    ns.iter()
        .enumerate()
        .map(|(i, &n)| Request {
            id: i as u64,
            seed: i as u64,
            inputs: vec![Tensor::from_i64(&[n], &[1]).expect("input")],
        })
        .collect()
}

/// Run the workload fault-free and return each request's outputs.
fn reference(program: &Program, workers: usize, reqs: &[Request]) -> HashMap<u64, Vec<Tensor>> {
    let mut sup = fleet(program, workers, FaultPlan::none());
    for r in reqs {
        sup.submit(r.clone()).expect("fault-free submit");
    }
    sup.run_until_quiescent()
        .into_iter()
        .map(|o| match o {
            Outcome::Done(r) => (r.id, r.outputs),
            Outcome::Failed { id, error } => panic!("fault-free run failed {id}: {error}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant. Rates are drawn up to ~25% per site so
    /// most cases mix recoveries with clean rounds; the retry budget
    /// may legitimately run out (a typed terminal outcome), but nothing
    /// may hang, wedge, or answer twice — and whatever completes must
    /// be bit-identical to the fault-free run.
    #[test]
    fn faults_cannot_perturb_results_or_lose_requests(
        seed in any::<u64>(),
        workers in 1usize..4,
        exec_error in 0u32..16_384,
        admit_error in 0u32..16_384,
        worker_panic in 0u32..16_384,
        worker_slow in 0u32..2_048,
    ) {
        silence_injected_panics();
        let program = fib_program();
        let ns: Vec<i64> = (0..8).map(|i| 3 + (i % 7)).collect();
        let reqs = requests(&ns);
        let want = reference(&program, workers, &reqs);

        let plan = FaultPlan {
            seed,
            exec_error,
            admit_error,
            worker_panic,
            worker_slow,
            ..FaultPlan::none()
        };
        let mut sup = fleet(&program, workers, plan);
        let mut outcomes: Vec<Outcome> = Vec::new();
        for r in &reqs {
            // A submit error is itself a terminal outcome (injected
            // admission faults that outlasted the budget).
            if let Err(e) = sup.submit(r.clone()) {
                outcomes.push(Outcome::Failed { id: r.id, error: e });
            }
        }
        outcomes.extend(sup.run_until_quiescent());

        // Exactly one terminal outcome per submitted request.
        let mut seen: Vec<u64> = outcomes.iter().map(Outcome::id).collect();
        seen.sort_unstable();
        let all: Vec<u64> = (0..reqs.len() as u64).collect();
        prop_assert_eq!(seen, all, "every request answered exactly once");

        // Survivors are bit-identical to the fault-free run, and every
        // failure carries a typed, retry-budget-shaped error.
        for o in &outcomes {
            match o {
                Outcome::Done(r) => {
                    prop_assert_eq!(&r.outputs, &want[&r.id], "request {} drifted", r.id);
                }
                Outcome::Failed { error, .. } => {
                    prop_assert!(
                        matches!(error, ServeError::RetriesExhausted { .. }),
                        "unexpected terminal error: {}", error
                    );
                }
            }
        }

        // The fleet ends healthy: poison never outlives the drive.
        prop_assert!(sup.inner().poisoned_shards().is_empty());
        prop_assert_eq!(sup.outstanding(), 0);
    }

    /// The governance invariant: random budgets × worker counts ×
    /// scheduling policies × runaway mixes may evict any subset of the
    /// traffic, but every submitted request still reaches exactly one
    /// terminal outcome (a response, or a typed governance/retry
    /// verdict), every survivor is bit-identical to an unbudgeted
    /// fault-free run, and the fleet ends healthy and idle — no budget
    /// blowup, however placed, can wedge `run_until_quiescent`.
    #[test]
    fn budget_eviction_cannot_perturb_survivors(
        seed in any::<u64>(),
        workers in 1usize..4,
        runaway in 0u32..(FaultPlan::ALWAYS / 2),
        worker_panic in 0u32..8_192,
        max_supersteps in 24u64..96,
        lane_bytes_raw in 0u64..1_000_000,
        least_loaded in any::<bool>(),
        quantum in 4u64..24,
    ) {
        silence_injected_panics();
        let program = fib_program();
        let ns: Vec<i64> = (0..8).map(|i| 3 + (i % 7)).collect();
        let reqs = requests(&ns);
        let want = reference(&program, workers, &reqs);

        let plan = FaultPlan {
            seed,
            runaway,
            worker_panic,
            ..FaultPlan::none()
        };
        let opts = ExecOptions {
            fault: plan,
            ..ExecOptions::default()
        };
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut inner = ShardedServer::new(
            &program,
            KernelRegistry::new(),
            opts,
            policy,
            workers,
            Backend::hybrid_cpu(),
        )
        .expect("fleet");
        if !least_loaded {
            inner.set_scheduling(SchedulingPolicy::PcAffinity(AffinityConfig {
                quantum,
                ..AffinityConfig::default()
            }));
        }
        let mut sup = Supervisor::new(inner, SupervisorConfig::default());
        // Zero means "no byte ceiling"; anything else is a ceiling that
        // may or may not bite — both are legitimate draws.
        let max_lane_bytes = (lane_bytes_raw > 0).then_some(255 + lane_bytes_raw);
        sup.set_budget(RequestBudget {
            max_supersteps: Some(max_supersteps),
            max_lane_bytes,
            ..RequestBudget::unlimited()
        });
        let mut outcomes: Vec<Outcome> = Vec::new();
        for r in &reqs {
            if let Err(e) = sup.submit(r.clone()) {
                outcomes.push(Outcome::Failed { id: r.id, error: e });
            }
        }
        outcomes.extend(sup.run_until_quiescent());

        // Exactly one terminal outcome per submitted request.
        let mut seen: Vec<u64> = outcomes.iter().map(Outcome::id).collect();
        seen.sort_unstable();
        let all: Vec<u64> = (0..reqs.len() as u64).collect();
        prop_assert_eq!(seen, all, "every request answered exactly once");

        for o in &outcomes {
            match o {
                // Survivors are bit-identical to the unbudgeted
                // fault-free run: eviction compaction cannot perturb a
                // batchmate.
                Outcome::Done(r) => {
                    prop_assert_eq!(&r.outputs, &want[&r.id], "request {} drifted", r.id);
                }
                // Failures are typed governance or retry verdicts —
                // never a poisoned-fleet or lost-request shape.
                Outcome::Failed { error, .. } => {
                    prop_assert!(
                        matches!(
                            error,
                            ServeError::BudgetExceeded { .. }
                                | ServeError::MemoryExceeded { .. }
                                | ServeError::RetriesExhausted { .. }
                                | ServeError::Quarantined { .. }
                        ),
                        "unexpected terminal error: {}", error
                    );
                }
            }
        }

        // Healthy and idle: no wedge, no poison, nothing in flight.
        prop_assert!(sup.inner().poisoned_shards().is_empty());
        prop_assert_eq!(sup.outstanding(), 0);
        prop_assert_eq!(sup.inner().pending() + sup.inner().in_flight(), 0);
    }
}

#[test]
fn worker_panic_is_contained_and_the_shard_respawns() {
    silence_injected_panics();
    let program = fib_program();
    // Panics fire on roughly half of all worker rounds: enough that the
    // first rounds are guaranteed hits (verified by the respawn count
    // below), while retries eventually land on clean rounds.
    let plan = FaultPlan {
        seed: 0,
        worker_panic: FaultPlan::ALWAYS / 2,
        ..FaultPlan::none()
    };
    let mut sup = fleet(&program, 2, plan);
    let reqs = requests(&[6, 9, 7, 8]);
    let want = reference(&program, 2, &reqs);
    for r in &reqs {
        sup.submit(r.clone())
            .expect("panics cannot refuse admission");
    }
    let outcomes = sup.run_until_quiescent();
    assert_eq!(outcomes.len(), reqs.len());
    assert!(
        sup.respawns() > 0,
        "a ~50% panic rate must have killed at least one worker round"
    );
    for o in outcomes {
        match o {
            Outcome::Done(r) => assert_eq!(r.outputs, want[&r.id]),
            Outcome::Failed { id, error } => panic!("request {id} lost to {error}"),
        }
    }
    assert!(sup.inner().poisoned_shards().is_empty());
}

#[test]
fn retry_budget_exhaustion_terminates_with_typed_errors() {
    silence_injected_panics();
    let program = fib_program();
    // Every worker round panics, forever: no request can ever finish.
    // The drive must still terminate — each failing round burns retry
    // attempts — answering everything with RetriesExhausted and leaving
    // a healthy (respawned) fleet behind.
    let plan = FaultPlan {
        seed: 11,
        worker_panic: FaultPlan::ALWAYS,
        ..FaultPlan::none()
    };
    let mut sup = fleet(&program, 2, plan);
    let reqs = requests(&[5, 6, 7]);
    for r in &reqs {
        sup.submit(r.clone()).expect("submit is unaffected");
    }
    let outcomes = sup.run_until_quiescent();
    assert_eq!(outcomes.len(), reqs.len());
    for o in outcomes {
        match o {
            Outcome::Failed {
                error: ServeError::RetriesExhausted { attempts, .. },
                ..
            } => assert!(attempts > 0),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
    assert!(sup.inner().poisoned_shards().is_empty(), "fleet healed");
    assert!(sup.respawns() > 0);
    assert_eq!(sup.outstanding(), 0);
}

#[test]
fn injected_admission_faults_retry_inline_then_exhaust() {
    let program = fib_program();
    // ALWAYS: every submit attempt fails; the supervisor retries inline
    // up to the budget, then reports the typed terminal error.
    let plan = FaultPlan {
        seed: 3,
        admit_error: FaultPlan::ALWAYS,
        ..FaultPlan::none()
    };
    let mut sup = fleet(&program, 1, plan);
    let err = sup
        .submit(requests(&[6]).remove(0))
        .expect_err("admission faults on every attempt");
    match err {
        ServeError::RetriesExhausted { id, attempts, .. } => {
            assert_eq!(id, 0);
            assert_eq!(attempts, SupervisorConfig::default().retry_budget);
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
    assert_eq!(sup.outstanding(), 0, "a refused request is not tracked");
}

#[test]
fn exec_faults_poison_heal_and_preserve_results() {
    silence_injected_panics();
    let program = fib_program();
    // Injected execution errors poison shards mid-superstep; the
    // supervisor salvages, respawns, and retries. Results must match
    // the fault-free run bit for bit: lanes draw RNG under the request
    // seed, so a retried request recomputes the identical answer.
    let plan = FaultPlan {
        seed: 7,
        exec_error: FaultPlan::ALWAYS / 64,
        ..FaultPlan::none()
    };
    let mut sup = fleet(&program, 2, plan);
    let reqs = requests(&[4, 9, 5, 8, 6, 7]);
    let want = reference(&program, 2, &reqs);
    for r in &reqs {
        sup.submit(r.clone()).expect("submit");
    }
    let outcomes = sup.run_until_quiescent();
    assert_eq!(outcomes.len(), reqs.len());
    let done = outcomes.iter().filter(|o| o.is_done()).count();
    assert!(done > 0, "a ~1.6% exec fault rate cannot kill everything");
    assert!(sup.respawns() > 0, "exec faults must have poisoned a shard");
    for o in outcomes {
        if let Outcome::Done(r) = o {
            assert_eq!(r.outputs, want[&r.id], "request {} drifted", r.id);
        }
    }
    assert!(sup.inner().poisoned_shards().is_empty());
}

#[test]
fn respawn_salvages_completed_work_and_reports_health() {
    silence_injected_panics();
    let program = fib_program();
    let plan = FaultPlan {
        seed: 1,
        worker_panic: FaultPlan::ALWAYS,
        ..FaultPlan::none()
    };
    let opts = ExecOptions {
        fault: plan,
        ..ExecOptions::default()
    };
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: 2,
        min_utilization: 1.0,
    };
    let mut fleet = ShardedServer::new(
        &program,
        KernelRegistry::new(),
        opts,
        policy,
        1,
        Backend::hybrid_cpu(),
    )
    .expect("fleet");
    for r in requests(&[6, 7, 8]) {
        fleet.submit(r).expect("submit");
    }
    let err = fleet.run_until_idle().expect_err("every round panics");
    assert!(matches!(err, ServeError::Panicked { .. }), "typed: {err}");
    assert_eq!(fleet.poisoned_shards(), vec![0]);

    let (stranded, lost) = fleet.respawn_shard(0);
    // Everything the dead worker held comes back out: the queued tail
    // plus the ids that were mid-flight when the panic hit.
    assert_eq!(stranded.len() + lost.len(), 3);
    assert!(fleet.poisoned_shards().is_empty(), "fresh shard is healthy");
    let health = &fleet.health()[0];
    assert_eq!(health.respawns, 1);
    assert!(health.healthy);
    assert!(
        matches!(health.last_error, Some(ServeError::Panicked { .. })),
        "the fault record survives the respawn"
    );
}
