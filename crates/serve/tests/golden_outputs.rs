//! Golden bit-identity regression over the committed bench workloads.
//!
//! The perf work on the interpreter hot loop (copy-on-write tensor
//! storage, the scratch arena, and the fused elementwise fast path) must
//! never change a single output bit: these tests pin the exact outputs
//! of the two `BENCH_*` smoke workloads (divergent-binom and
//! funnel-NUTS, 12 requests each) as FNV-1a digests captured from the
//! pre-refactor implementation. Any arithmetic or scheduling drift —
//! fused kernels evaluating in a different order, a COW buffer exposed
//! mid-write, a scratch buffer leaking state between supersteps — shows
//! up here as a digest mismatch.

use std::sync::Arc;

use autobatch_accel::Backend;
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions};
use autobatch_lang::compile;
use autobatch_models::NealsFunnel;
use autobatch_nuts::{BatchNuts, NutsConfig};
use autobatch_serve::{AdmissionPolicy, Request, Response, ShardedServer};
use autobatch_tensor::{CounterRng, Data, Tensor};

const BINOM_SRC: &str = "
    // C(n, k) by Pascal's rule — doubly data-dependent recursion.
    fn binom(n: int, k: int) -> (out: int) {
        if k <= 0 {
            out = 1;
        } else if k >= n {
            out = 1;
        } else {
            let left = binom(n - 1, k - 1);
            let right = binom(n - 1, k);
            out = left + right;
        }
    }
";

/// FNV-1a over the exact bit patterns of every output tensor, in
/// response-id order. Any single-bit difference changes the digest.
fn digest(responses: &[Response]) -> u64 {
    let mut sorted: Vec<&Response> = responses.iter().collect();
    sorted.sort_by_key(|r| r.id);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in sorted {
        mix(r.id);
        for t in &r.outputs {
            for &d in t.shape() {
                mix(d as u64);
            }
            match t.data() {
                Data::F64(v) => v.iter().for_each(|x| mix(x.to_bits())),
                Data::I64(v) => v.iter().for_each(|&x| mix(x as u64)),
                Data::Bool(v) => v.iter().for_each(|&x| mix(u64::from(x))),
            }
        }
    }
    h
}

fn serve_sharded(
    program: &autobatch_ir::pcab::Program,
    registry: &KernelRegistry,
    opts: ExecOptions,
    requests: Vec<Request>,
    workers: usize,
) -> Vec<Response> {
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: 4,
        min_utilization: 1.0,
    };
    let mut server = ShardedServer::new(
        program,
        registry.clone(),
        opts,
        policy,
        workers,
        Backend::hybrid_cpu(),
    )
    .expect("server");
    for r in requests {
        server.submit(r).expect("submit");
    }
    server.run_until_idle().expect("serve")
}

/// The divergent-binom smoke stream of `shard_throughput` (12 requests,
/// coprime strides).
fn binom_requests() -> Vec<Request> {
    (0..12)
        .map(|i| {
            let n = 10 + (i * 5 % 7) as i64;
            let k = 2 + (i * 3 % 5) as i64;
            Request {
                id: i as u64,
                inputs: vec![
                    Tensor::from_i64(&[n], &[1]).expect("n"),
                    Tensor::from_i64(&[k], &[1]).expect("k"),
                ],
                seed: i as u64,
            }
        })
        .collect()
}

#[test]
fn divergent_binom_outputs_are_bit_identical_to_pre_refactor() {
    let program = compile(BINOM_SRC, "binom").expect("binom compiles");
    let (pc, _) = lower(&program, LoweringOptions::default()).expect("binom lowers");
    for workers in [1usize, 2] {
        let done = serve_sharded(
            &pc,
            &KernelRegistry::new(),
            ExecOptions::default(),
            binom_requests(),
            workers,
        );
        assert_eq!(done.len(), 12);
        // Spot-check one human-readable value besides the digest:
        // C(10, 2) = 45 for request 0.
        let r0 = done.iter().find(|r| r.id == 0).expect("request 0");
        assert_eq!(r0.outputs[0].as_i64().expect("i64"), &[45]);
        assert_eq!(
            digest(&done),
            6914980814453413019,
            "binom outputs drifted at {workers} workers"
        );
    }
}

#[test]
fn funnel_nuts_positions_are_bit_identical_to_pre_refactor() {
    let cfg = NutsConfig {
        step_size: 0.2,
        n_trajectories: 3,
        max_depth: 6,
        leapfrog_steps: 2,
        seed: 31,
    };
    let nuts = BatchNuts::new(Arc::new(NealsFunnel::new(5)), cfg).expect("NUTS compiles");
    let rng = CounterRng::new(64);
    let requests: Vec<Request> = (0..12)
        .map(|i| {
            let q = rng
                .normal_batch(&[i as i64], &[nuts.dim()])
                .row(0)
                .expect("row");
            Request {
                id: i as u64,
                inputs: nuts.request_inputs(&q).expect("inputs"),
                seed: i as u64,
            }
        })
        .collect();
    for workers in [1usize, 2] {
        let done = serve_sharded(
            nuts.lowered(),
            nuts.registry(),
            nuts.exec_options(),
            requests.clone(),
            workers,
        );
        assert_eq!(done.len(), 12);
        assert_eq!(
            digest(&done),
            4923661940693526310,
            "funnel-NUTS positions drifted at {workers} workers"
        );
    }
}
