//! PC-affinity scheduling suite: routing, straggler migration, work
//! stealing, and batch splits may change *where* and *when* lanes run,
//! but never *what* they compute or the order responses come back in.
//!
//! The headline property: under any worker count and any
//! [`AffinityConfig`] — including degenerate quanta and aggressive
//! migration settings — every response is bit-identical to the same
//! stream served by a single unsharded worker, and responses still
//! arrive in submission order. The scheduler is a pure function of
//! deterministic snapshots, and every lane's RNG draws are keyed by
//! `(seed, member_key, counter)` rather than by placement, so no
//! rebalancing schedule can perturb outputs.

use autobatch_accel::Backend;
use autobatch_chaos::FaultPlan;
use autobatch_core::{lower, ExecOptions, KernelRegistry, LoweringOptions};
use autobatch_ir::build::fibonacci_program;
use autobatch_ir::pcab::Program;
use autobatch_serve::{
    AdmissionPolicy, AffinityConfig, Outcome, Request, Response, SchedulingPolicy, ShardedServer,
    Supervisor, SupervisorConfig,
};
use autobatch_tensor::Tensor;
use proptest::prelude::*;

fn fib_program() -> Program {
    let (program, _) = lower(&fibonacci_program(), LoweringOptions::default()).expect("lower");
    program
}

fn requests(ns: &[i64]) -> Vec<Request> {
    ns.iter()
        .enumerate()
        .map(|(i, &n)| Request {
            id: i as u64,
            seed: 100 + i as u64,
            inputs: vec![Tensor::from_i64(&[n], &[1]).expect("input")],
        })
        .collect()
}

fn fleet<'p>(
    program: &'p Program,
    workers: usize,
    batch: usize,
    scheduling: SchedulingPolicy,
) -> ShardedServer<'p> {
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: batch,
        min_utilization: 1.0,
    };
    let mut server = ShardedServer::new(
        program,
        KernelRegistry::new(),
        ExecOptions::default(),
        policy,
        workers,
        Backend::hybrid_cpu(),
    )
    .expect("fleet");
    server.set_scheduling(scheduling);
    server
}

fn serve(server: &mut ShardedServer<'_>, reqs: &[Request]) -> Vec<Response> {
    for r in reqs {
        server.submit(r.clone()).expect("submit");
    }
    server.run_until_idle().expect("serve")
}

/// A divergent workload: recursion depths spread so lanes retire at
/// very different times, exercising consolidation, splits, and steals.
fn divergent_ns() -> Vec<i64> {
    (0..10).map(|i| 2 + (i * 5 % 9)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: any affinity schedule — any quantum,
    /// packing factor, migration aggressiveness, and steal batch, at
    /// any worker count — produces responses bit-identical to a single
    /// unsharded worker, in the same submission order.
    #[test]
    fn affinity_routing_cannot_perturb_results(
        workers in 1usize..=4,
        quantum in 1u64..48,
        pack in 1u32..20,   // 0.1 .. 2.0 packing factor
        min_match in 1usize..3,
        max_donor_live in 0usize..3,
        steal_batch in 1usize..6,
    ) {
        let program = fib_program();
        let reqs = requests(&divergent_ns());
        let want = serve(
            &mut fleet(&program, 1, 3, SchedulingPolicy::LeastLoaded),
            &reqs,
        );

        let cfg = AffinityConfig {
            quantum,
            pack: f64::from(pack) / 10.0,
            min_match,
            max_donor_live,
            steal_batch,
        };
        let mut sharded = fleet(&program, workers, 3, SchedulingPolicy::PcAffinity(cfg));
        let got = serve(&mut sharded, &reqs);

        // Same order (submission order), same ids, bit-identical
        // outputs. Timing fields are allowed to differ: *when* a lane
        // ran is exactly what scheduling changes.
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id, "response order drifted");
            prop_assert_eq!(&g.outputs, &w.outputs, "request {} drifted", g.id);
        }
    }
}

/// Deterministic end-to-end check that the affinity machinery actually
/// fires on a divergent workload — migrations happen, the trace
/// accounting balances, and nothing is lost or reordered.
#[test]
fn migrations_fire_and_trace_accounting_balances() {
    let program = fib_program();
    let reqs = requests(&divergent_ns());
    let want = serve(
        &mut fleet(&program, 1, 3, SchedulingPolicy::LeastLoaded),
        &reqs,
    );

    let mut server = fleet(
        &program,
        3,
        3,
        SchedulingPolicy::PcAffinity(AffinityConfig::default()),
    );
    let got = serve(&mut server, &reqs);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.id, w.id);
        assert_eq!(g.outputs, w.outputs);
    }

    let mut migrated_in = 0;
    let mut migrated_out = 0;
    for i in 0..server.shards() {
        let t = server.shard_trace(i);
        migrated_in += t.members_migrated_in();
        migrated_out += t.members_migrated_out();
        // Per-shard membership accounting must close out: everything
        // that entered (admitted or migrated in) also left (retired or
        // migrated out).
        assert_eq!(t.live_members(), 0, "shard {i} leaked members");
    }
    assert!(migrated_in > 0, "divergent workload must trigger migration");
    assert_eq!(migrated_in, migrated_out, "no lane teleports or vanishes");
}

/// Work stealing preserves the global submission-order guarantee even
/// when the packing factor funnels every request through one shard's
/// queue and the rest of the fleet drains it by theft.
#[test]
fn stealing_from_a_deep_queue_preserves_order_and_results() {
    let program = fib_program();
    let reqs = requests(&divergent_ns());
    let want = serve(
        &mut fleet(&program, 1, 2, SchedulingPolicy::LeastLoaded),
        &reqs,
    );

    // pack: 10.0 routes everything to shard 0 (its open threshold is
    // never reached); the other three shards only ever see stolen work.
    let cfg = AffinityConfig {
        pack: 10.0,
        ..AffinityConfig::default()
    };
    let mut server = fleet(&program, 4, 2, SchedulingPolicy::PcAffinity(cfg));
    let got = serve(&mut server, &reqs);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.id, w.id, "stolen work broke submission order");
        assert_eq!(g.outputs, w.outputs);
    }
    // At least one other shard must actually have run something.
    let busy = (1..server.shards())
        .filter(|&i| server.shard_trace(i).supersteps() > 0)
        .count();
    assert!(busy > 0, "nothing was stolen from the packed shard");
}

/// Chaos interplay: straggler migration keeps firing while shards are
/// being poisoned and respawned mid-flight. Migrated lanes must not be
/// lost when their new home dies, and survivors stay bit-identical.
#[test]
fn migration_survives_shard_respawns_mid_flight() {
    let program = fib_program();
    let reqs = requests(&divergent_ns());
    let want = serve(
        &mut fleet(&program, 1, 3, SchedulingPolicy::LeastLoaded),
        &reqs,
    );

    // Execution faults poison shards every ~64th superstep window —
    // plenty of respawns over this workload — while the affinity
    // scheduler keeps migrating and stealing between failures.
    let plan = FaultPlan {
        seed: 5,
        exec_error: FaultPlan::ALWAYS / 64,
        ..FaultPlan::none()
    };
    let opts = ExecOptions {
        fault: plan,
        ..ExecOptions::default()
    };
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: 3,
        min_utilization: 1.0,
    };
    let mut inner = ShardedServer::new(
        &program,
        KernelRegistry::new(),
        opts,
        policy,
        3,
        Backend::hybrid_cpu(),
    )
    .expect("fleet");
    inner.set_scheduling(SchedulingPolicy::PcAffinity(AffinityConfig::default()));
    let mut sup = Supervisor::new(inner, SupervisorConfig::default());
    for r in &reqs {
        sup.submit(r.clone()).expect("submit");
    }
    let outcomes = sup.run_until_quiescent();

    // Every request gets exactly one terminal outcome, and everything
    // that completed matches the unsharded fault-free run bit for bit.
    assert_eq!(outcomes.len(), reqs.len());
    let mut done = 0;
    for o in &outcomes {
        if let Outcome::Done(r) = o {
            let w = &want[r.id as usize];
            assert_eq!(r.id, w.id);
            assert_eq!(r.outputs, w.outputs, "request {} drifted", r.id);
            done += 1;
        }
    }
    assert!(done > 0, "a ~1.6% fault rate cannot kill everything");
    assert!(
        sup.respawns() > 0,
        "exec faults must have forced at least one respawn"
    );
    assert!(sup.inner().poisoned_shards().is_empty(), "fleet healed");
    assert_eq!(sup.outstanding(), 0);
}
