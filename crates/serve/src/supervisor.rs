//! Self-healing supervision over the sharded fleet.
//!
//! [`ShardedServer`] contains faults (a poisoned shard cannot hurt its
//! siblings) but does not *recover* from them: a poisoned shard stays
//! out of rotation until an operator calls
//! [`ShardedServer::drain_poisoned`] by hand, and work that was in
//! flight on the dead machine is simply gone. [`Supervisor`] closes
//! that loop:
//!
//! - after every fleet round it **triages** failed shards: recoverable
//!   admission offenders are answered with their typed error and
//!   dropped; poisoned (execution error, caught panic) and
//!   step-limit-exhausted shards are **respawned in place** with a
//!   fresh `BatchServer` + `PcMachine`;
//! - work the dead machine stranded (queued) or lost (in flight) is
//!   **retried** under a bounded per-request retry budget with
//!   round-based backoff, from the supervisor's own copy of each
//!   request;
//! - a request whose budget runs out gets a **typed terminal error**
//!   ([`ServeError::RetriesExhausted`]) instead of silence.
//!
//! The contract, proven by the chaos property suite
//! (`crates/serve/tests/chaos.rs`): under any seeded
//! [`FaultPlan`](autobatch_chaos::FaultPlan), every submitted request
//! reaches **exactly one terminal outcome** ([`Outcome::Done`] or
//! [`Outcome::Failed`]), every surviving response is **bit-identical**
//! to the fault-free run (retries re-execute from scratch and the
//! counter-based RNG is keyed by the request seed, not placement), and
//! the fleet ends **healthy** (every dead shard respawned).
//!
//! Backoff is measured in fleet rounds, not wall clock, so supervised
//! runs stay deterministic and replayable.

use std::collections::{HashMap, VecDeque};

use autobatch_core::VmError;

use crate::shard::ShardHealth;
use crate::{Request, Response, Result, ServeError, ShardedServer};

/// Retry discipline of a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// How many times one request may be retried (beyond its first
    /// attempt) before it is answered with
    /// [`ServeError::RetriesExhausted`].
    pub retry_budget: u32,
    /// Backoff slope, in fleet rounds per accumulated attempt: a
    /// request on its `n`-th retry is parked for `backoff_rounds * n`
    /// rounds before re-entering the queue. Values below 1 behave as 1.
    pub backoff_rounds: u64,
    /// When the supervised program's requests repeatedly blow their
    /// resource budgets, trip a circuit breaker that fast-rejects at
    /// admission (see [`QuarantineConfig`]).
    pub quarantine: QuarantineConfig,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            retry_budget: 3,
            backoff_rounds: 1,
            quarantine: QuarantineConfig::default(),
        }
    }
}

/// The per-program quarantine breaker's tuning.
///
/// Budget blowups ([`ServeError::BudgetExceeded`],
/// [`ServeError::DeadlineExceeded`], [`ServeError::MemoryExceeded`] —
/// cancellations never count) are recorded against the supervised
/// program with the fleet round they happened in. When
/// `trip_threshold` blowups accumulate inside the `decay_rounds`
/// sliding window, the breaker **opens**: [`Supervisor::submit`]
/// fast-rejects with [`ServeError::Quarantined`] instead of burning
/// fleet capacity on a program that keeps running away. After
/// `cooldown_rounds` the breaker goes **half-open**: exactly one probe
/// request is admitted — if it completes, the breaker closes and the
/// record resets; if it blows a budget again, the breaker re-opens for
/// another cooldown. Round-based (not wall-clock), so supervised runs
/// stay deterministic and replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Blowups within the window that open the breaker. `0` disables
    /// quarantine entirely.
    pub trip_threshold: u32,
    /// Sliding window, in fleet rounds, a blowup stays on the record.
    pub decay_rounds: u64,
    /// Rounds the breaker stays open before half-open probing. While
    /// open, each fast-rejected submission also advances the round
    /// clock (refusals are the quarantined program's only events), so
    /// a steady caller reaches the half-open probe after at most
    /// `cooldown_rounds` refusals.
    pub cooldown_rounds: u64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            trip_threshold: 3,
            decay_rounds: 32,
            cooldown_rounds: 16,
        }
    }
}

/// Observable state of the per-program quarantine breaker
/// ([`Supervisor::quarantine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineStatus {
    /// Admitting normally; `recent_blowups` are on the sliding-window
    /// record.
    Closed {
        /// Budget blowups still inside the decay window.
        recent_blowups: u32,
    },
    /// Fast-rejecting all submissions until `until_round`.
    Open {
        /// First fleet round at which half-open probing begins.
        until_round: u64,
        /// Blowups on record when the breaker tripped.
        blowups: u32,
    },
    /// Cooldown elapsed: one probe request may be admitted.
    HalfOpen {
        /// Whether the single probe slot is currently occupied.
        probing: bool,
    },
}

/// The breaker itself: a windowed blowup log plus the open/half-open
/// state machine described on [`QuarantineConfig`].
#[derive(Debug)]
struct Breaker {
    config: QuarantineConfig,
    /// Fleet rounds at which budget blowups were recorded, oldest
    /// first; pruned to the decay window.
    blowups: VecDeque<u64>,
    state: BreakerState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until_round: u64 },
    HalfOpen { probe: Option<u64> },
}

impl Breaker {
    fn new(config: QuarantineConfig) -> Breaker {
        Breaker {
            config,
            blowups: VecDeque::new(),
            state: BreakerState::Closed,
        }
    }

    /// Drop blowups that fell out of the sliding window.
    fn decay(&mut self, round: u64) {
        let horizon = round.saturating_sub(self.config.decay_rounds);
        while self.blowups.front().is_some_and(|&r| r < horizon) {
            self.blowups.pop_front();
        }
    }

    /// Gate one admission at `round`. `Ok(())` admits; an open breaker
    /// rejects with [`ServeError::Quarantined`]. Handles the
    /// open→half-open transition when the cooldown has elapsed.
    fn admit(&mut self, round: u64, id: u64) -> Result<()> {
        self.decay(round);
        if let BreakerState::Open { until_round } = self.state {
            if round < until_round {
                return Err(ServeError::Quarantined {
                    blowups: self.blowups.len() as u32,
                });
            }
            self.state = BreakerState::HalfOpen { probe: None };
        }
        match self.state {
            BreakerState::HalfOpen { probe: Some(_) } => Err(ServeError::Quarantined {
                blowups: self.blowups.len() as u32,
            }),
            BreakerState::HalfOpen { probe: None } => {
                self.state = BreakerState::HalfOpen { probe: Some(id) };
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// The probe never actually entered the fleet (its submission
    /// failed downstream of the breaker): free the probe slot.
    fn abort_probe(&mut self, id: u64) {
        if self.state == (BreakerState::HalfOpen { probe: Some(id) }) {
            self.state = BreakerState::HalfOpen { probe: None };
        }
    }

    /// A request completed. A successful probe closes the breaker and
    /// resets the record — the program demonstrably terminates again.
    fn note_done(&mut self, id: u64) {
        if self.state == (BreakerState::HalfOpen { probe: Some(id) }) {
            self.state = BreakerState::Closed;
            self.blowups.clear();
        }
    }

    /// A request failed. A budget blowup goes on the record and can
    /// trip (or re-open) the breaker; a non-blowup failure of the probe
    /// (cancellation, retries exhausted) proves nothing about the
    /// program, so the probe slot simply reopens.
    fn note_failed(&mut self, id: u64, round: u64, blowup: bool) {
        if !blowup {
            self.abort_probe(id);
            return;
        }
        if self.config.trip_threshold == 0 {
            return;
        }
        self.decay(round);
        self.blowups.push_back(round);
        let probe_blew = self.state == (BreakerState::HalfOpen { probe: Some(id) });
        let tripped = self.state == BreakerState::Closed
            && self.blowups.len() >= self.config.trip_threshold as usize;
        if probe_blew || tripped {
            self.state = BreakerState::Open {
                until_round: round + self.config.cooldown_rounds.max(1),
            };
        }
    }

    fn status(&self) -> QuarantineStatus {
        match self.state {
            BreakerState::Closed => QuarantineStatus::Closed {
                recent_blowups: self.blowups.len() as u32,
            },
            BreakerState::Open { until_round } => QuarantineStatus::Open {
                until_round,
                blowups: self.blowups.len() as u32,
            },
            BreakerState::HalfOpen { probe } => QuarantineStatus::HalfOpen {
                probing: probe.is_some(),
            },
        }
    }
}

/// The terminal outcome of one supervised request.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The request completed; the response is bit-identical to what a
    /// fault-free run would have produced.
    Done(Response),
    /// The request failed for good: a typed error after triage (bad
    /// admission) or after its retry budget ran out.
    Failed {
        /// The request id.
        id: u64,
        /// Why the supervisor gave up.
        error: ServeError,
    },
}

impl Outcome {
    /// The request id this outcome answers.
    pub fn id(&self) -> u64 {
        match self {
            Outcome::Done(r) => r.id,
            Outcome::Failed { id, .. } => *id,
        }
    }

    /// Whether the request completed successfully.
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done(_))
    }
}

/// A self-healing wrapper around [`ShardedServer`]: respawns dead
/// shards, retries their stranded and lost work under a bounded budget,
/// and turns every failure into a typed terminal [`Outcome`].
///
/// # Examples
///
/// ```
/// use autobatch_accel::Backend;
/// use autobatch_core::{lower, KernelRegistry, LoweringOptions, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_serve::{
///     AdmissionPolicy, Request, ShardedServer, Supervisor, SupervisorConfig,
/// };
/// use autobatch_tensor::Tensor;
///
/// let (program, _) = lower(&fibonacci_program(), LoweringOptions::default())?;
/// let policy = AdmissionPolicy::JoinAtEntry { max_batch: 2, min_utilization: 1.0 };
/// let fleet = ShardedServer::new(
///     &program, KernelRegistry::new(), ExecOptions::default(), policy, 2,
///     Backend::hybrid_cpu(),
/// )?;
/// let mut sup = Supervisor::new(fleet, SupervisorConfig::default());
/// for (id, n) in [(0u64, 6i64), (1, 9)] {
///     sup.submit(Request { id, inputs: vec![Tensor::from_i64(&[n], &[1])?], seed: id })?;
/// }
/// let outcomes = sup.run_until_quiescent();
/// assert!(outcomes.iter().all(|o| o.is_done()));
/// assert!(sup.inner().poisoned_shards().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Supervisor<'p> {
    inner: ShardedServer<'p>,
    config: SupervisorConfig,
    /// id → (a retryable copy of the request, attempts consumed).
    tracked: HashMap<u64, (Request, u32)>,
    /// Requests awaiting a backoff release: `(request, release_round)`.
    parked: Vec<(Request, u64)>,
    /// Terminal failures accumulated between drains.
    failed: Vec<Outcome>,
    /// Fleet rounds driven so far — the virtual time backoff counts in.
    round: u64,
    /// Retry attempts performed over the supervisor's lifetime.
    retries: u64,
    /// The per-program quarantine breaker (see [`QuarantineConfig`]).
    breaker: Breaker,
}

impl<'p> Supervisor<'p> {
    /// Supervise an existing fleet.
    pub fn new(inner: ShardedServer<'p>, config: SupervisorConfig) -> Supervisor<'p> {
        Supervisor {
            inner,
            config,
            tracked: HashMap::new(),
            parked: Vec::new(),
            failed: Vec::new(),
            round: 0,
            retries: 0,
            breaker: Breaker::new(config.quarantine),
        }
    }

    /// The supervised fleet, for observability
    /// ([`ShardedServer::health`], traces, counters).
    pub fn inner(&self) -> &ShardedServer<'p> {
        &self.inner
    }

    /// Advance the fleet's virtual clock. See [`ShardedServer::set_clock`].
    pub fn set_clock(&mut self, now: u64) {
        self.inner.set_clock(now);
    }

    /// Bound every shard's queue depth. See
    /// [`ShardedServer::set_queue_budget`].
    pub fn set_queue_budget(&mut self, budget: Option<usize>) {
        self.inner.set_queue_budget(budget);
    }

    /// Set the per-request resource ceilings every shard enforces. See
    /// [`ShardedServer::set_budget`].
    pub fn set_budget(&mut self, budget: crate::RequestBudget) {
        self.inner.set_budget(budget);
    }

    /// The per-program quarantine breaker's observable state.
    pub fn quarantine(&self) -> QuarantineStatus {
        self.breaker.status()
    }

    /// Request cooperative cancellation of a tracked request: a parked
    /// retry is answered with [`ServeError::Cancelled`] immediately; a
    /// queued or in-flight request is cancelled through the fleet (its
    /// lane evicted at the next superstep boundary) and resolves to the
    /// same typed outcome on the next
    /// [`Supervisor::run_until_quiescent`]. Returns `false` when the id
    /// is unknown — already answered, or never submitted.
    pub fn cancel(&mut self, id: u64) -> bool {
        if let Some(pos) = self.parked.iter().position(|(r, _)| r.id == id) {
            let (r, _) = self.parked.remove(pos);
            self.inner.abandon_seq(r.id);
            self.resolve_failure(id, ServeError::Cancelled);
            return true;
        }
        self.inner.cancel(id)
    }

    /// Total shard respawns performed so far.
    pub fn respawns(&self) -> u64 {
        self.inner.respawns()
    }

    /// Total retry attempts performed so far (inline admission retries
    /// plus requeues of stranded/lost work).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Per-shard health: respawn count, last recorded error, liveness.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.inner.health()
    }

    /// Requests tracked but not yet resolved to a terminal outcome.
    pub fn outstanding(&self) -> usize {
        self.tracked.len()
    }

    /// Submit a request for supervised execution. An injected admission
    /// fault is retried inline up to the retry budget; real refusals
    /// (bad arity, overload) pass straight through — the caller owns
    /// that terminal outcome.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] / [`ServeError::Overloaded`] as
    /// [`ShardedServer::submit`]; [`ServeError::Quarantined`] when the
    /// program's breaker is open (fast rejection — nothing reaches the
    /// fleet); [`ServeError::RetriesExhausted`] when injected admission
    /// faults outlasted the budget. In every error case the request is
    /// **not** tracked: the error *is* its terminal outcome.
    pub fn submit(&mut self, request: Request) -> Result<()> {
        if let Err(e) = self.breaker.admit(self.round, request.id) {
            // While the breaker is open nothing enters the fleet, so
            // no drive rounds happen: fast-rejects are the program's
            // only events and therefore drive the cooldown clock.
            self.round += 1;
            return Err(e);
        }
        // A fleet left sick by a previous drive (or a panic mid-run)
        // must not refuse new work: heal before routing.
        if !self.inner.poisoned_shards().is_empty() {
            self.heal();
        }
        let mut attempts = 0u32;
        loop {
            match self.inner.submit(request.clone()) {
                Ok(()) => {
                    self.tracked.insert(request.id, (request, 0));
                    return Ok(());
                }
                Err(e @ ServeError::Vm(VmError::Injected { .. })) => {
                    if attempts >= self.config.retry_budget {
                        self.breaker.abort_probe(request.id);
                        return Err(ServeError::RetriesExhausted {
                            id: request.id,
                            attempts,
                            last: Box::new(e),
                        });
                    }
                    attempts += 1;
                    self.retries += 1;
                }
                Err(e) => {
                    // The breaker admitted this id but it never entered
                    // the fleet: free the half-open probe slot, if held.
                    self.breaker.abort_probe(request.id);
                    return Err(e);
                }
            }
        }
    }

    /// Drive the fleet until every tracked request has a terminal
    /// outcome, healing as it goes: each round runs the shards to idle,
    /// salvages and respawns dead shards, retries their stranded and
    /// lost work (with backoff), and rejects unrecoverable admissions.
    /// Returns the outcomes accumulated since the last drain, in
    /// resolution order.
    ///
    /// Quiescence is guaranteed: every failing round burns retry
    /// attempts from a bounded per-request budget, so even a fault plan
    /// that fires on every round terminates with typed
    /// [`Outcome::Failed`] answers — and a healthy fleet.
    pub fn run_until_quiescent(&mut self) -> Vec<Outcome> {
        self.drive(None)
    }

    /// As [`Supervisor::run_until_quiescent`], with a cooperative
    /// cancellation hook: `poll` is drained between supervision rounds
    /// *and* between fleet scheduling rounds (see
    /// [`ShardedServer::run_until_idle_with`]), and every id it returns
    /// is [cancelled](Supervisor::cancel) — the plumbing an ingress
    /// front end uses to map client disconnects onto lane evictions
    /// while a flush is still running.
    pub fn run_until_quiescent_with(&mut self, poll: &mut dyn FnMut() -> Vec<u64>) -> Vec<Outcome> {
        self.drive(Some(poll))
    }

    fn drive(&mut self, mut poll: Option<&mut dyn FnMut() -> Vec<u64>>) -> Vec<Outcome> {
        let mut outcomes = Vec::new();
        loop {
            if let Some(p) = poll.as_mut() {
                // Supervisor-level drain: catches ids the fleet cannot
                // see (parked retries). Queued/in-flight ids forward to
                // the shards like any cancel.
                for id in p() {
                    self.cancel(id);
                }
            }
            self.triage();
            self.heal();
            // Salvaged completions from triage/heal (and any left over
            // from an errored previous drive).
            for r in self.inner.take_ready() {
                self.tracked.remove(&r.id);
                self.breaker.note_done(r.id);
                outcomes.push(Outcome::Done(r));
            }
            // Governance verdicts are terminal, never retried: a budget
            // blowup would blow the same budget again on re-execution
            // (same program, same inputs, deterministic VM), and a
            // cancelled request has nobody waiting for it. Blowups feed
            // the quarantine breaker.
            for (id, error) in self.inner.take_failed() {
                self.resolve_failure(id, error);
            }
            // Release parked retries whose backoff expired; if the
            // fleet is otherwise idle, fast-forward to the next release
            // instead of spinning empty rounds.
            if !self.parked.is_empty() && self.inner.pending() == 0 && self.inner.in_flight() == 0 {
                let next = self
                    .parked
                    .iter()
                    .map(|&(_, release)| release)
                    .min()
                    .expect("parked is non-empty");
                self.round = self.round.max(next);
            }
            let round = self.round;
            let due: Vec<Request> = {
                let (due, rest): (Vec<_>, Vec<_>) = self
                    .parked
                    .drain(..)
                    .partition(|&(_, release)| release <= round);
                self.parked = rest;
                due.into_iter().map(|(r, _)| r).collect()
            };
            for r in due {
                // Re-entry may itself fail (injected admission fault):
                // that burns another attempt like any failed try.
                if let Err(e) = self.inner.resubmit(r.clone()) {
                    self.requeue(r, e);
                }
            }
            outcomes.append(&mut self.failed);
            if self.inner.pending() == 0 && self.inner.in_flight() == 0 && self.parked.is_empty() {
                return outcomes;
            }
            self.round += 1;
            let run = match poll.as_mut() {
                Some(p) => self.inner.run_until_idle_with(*p),
                None => self.inner.run_until_idle(),
            };
            let completed = match run {
                Ok(responses) => responses,
                // The error is recorded per shard; triage/heal at the
                // top of the next iteration act on it. Completed work
                // is salvaged either way.
                Err(_) => self.inner.take_ready(),
            };
            for r in completed {
                self.tracked.remove(&r.id);
                self.breaker.note_done(r.id);
                outcomes.push(Outcome::Done(r));
            }
        }
    }

    /// Resolve one request to a typed terminal failure, feeding the
    /// quarantine breaker. (The fleet-side submission sequence is
    /// assumed already released.)
    fn resolve_failure(&mut self, id: u64, error: ServeError) {
        self.tracked.remove(&id);
        let blowup = matches!(
            error,
            ServeError::BudgetExceeded { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::MemoryExceeded { .. }
        );
        self.breaker.note_failed(id, self.round, blowup);
        self.failed.push(Outcome::Failed { id, error });
    }

    /// Answer recoverable admission offenders with their typed error.
    /// (A failed batch admission leaves the offender at its shard's
    /// queue head; left there it would wedge the shard forever.)
    fn triage(&mut self) {
        let poisoned = self.inner.poisoned_shards();
        for (i, e) in self.inner.shard_errors() {
            if poisoned.contains(&i) || matches!(e, ServeError::Vm(VmError::StepLimit { .. })) {
                continue; // heal() owns these
            }
            if let Some(r) = self.inner.reject_on(i) {
                self.tracked.remove(&r.id);
                self.inner.abandon_seq(r.id);
                self.breaker.note_failed(r.id, self.round, false);
                self.failed.push(Outcome::Failed { id: r.id, error: e });
            }
        }
    }

    /// Respawn every dead shard (poisoned or step-limit-exhausted) and
    /// requeue the work it stranded or lost.
    fn heal(&mut self) {
        let errors: HashMap<usize, ServeError> = self.inner.shard_errors().into_iter().collect();
        let mut sick = self.inner.poisoned_shards();
        for (&i, e) in &errors {
            if matches!(e, ServeError::Vm(VmError::StepLimit { .. })) && !sick.contains(&i) {
                sick.push(i);
            }
        }
        sick.sort_unstable();
        for i in sick {
            let cause = errors
                .get(&i)
                .cloned()
                .unwrap_or_else(|| ServeError::Panicked {
                    what: "shard died without a recorded error".into(),
                });
            let (stranded, lost) = self.inner.respawn_shard(i);
            for r in stranded {
                self.requeue(r, cause.clone());
            }
            for id in lost {
                // Retried from the supervisor's copy; an id no longer
                // tracked already completed (salvaged) — nothing lost.
                if let Some(r) = self.tracked.get(&id).map(|(r, _)| r.clone()) {
                    self.requeue(r, cause.clone());
                }
            }
        }
    }

    /// Charge one failed attempt to `request`: park it for backoff, or
    /// answer it with [`ServeError::RetriesExhausted`] if the budget is
    /// spent.
    fn requeue(&mut self, request: Request, cause: ServeError) {
        self.retries += 1;
        let attempts = match self.tracked.get_mut(&request.id) {
            Some((_, a)) => {
                *a += 1;
                *a
            }
            None => {
                // Defensive: an untracked stray gets tracked now so its
                // budget is still bounded.
                self.tracked.insert(request.id, (request.clone(), 1));
                1
            }
        };
        if attempts > self.config.retry_budget {
            self.tracked.remove(&request.id);
            self.inner.abandon_seq(request.id);
            self.breaker.note_failed(request.id, self.round, false);
            self.failed.push(Outcome::Failed {
                id: request.id,
                error: ServeError::RetriesExhausted {
                    id: request.id,
                    attempts,
                    last: Box::new(cause),
                },
            });
        } else {
            let release = self.round + self.config.backoff_rounds.max(1) * attempts as u64;
            self.parked.push((request, release));
        }
    }
}
