//! PC-affinity scheduling for the sharded server (paper §3 applied to
//! cross-shard routing).
//!
//! The paper's core economics — batching control-intensive programs
//! pays off only when lanes agree on a program counter — holds at the
//! fleet level too: least-loaded routing spreads divergent requests
//! evenly, leaving every shard an underfilled, pc-mixed batch and
//! inflating the total superstep count as workers are added. This
//! module turns the pc signal the machines already expose
//! ([`crate::BatchServer::pc_histogram`]) into a scheduling policy with
//! four moves:
//!
//! - **Affinity routing**: new requests *pack* shards to capacity in
//!   submission order (a request's affinity key is the program entry
//!   block, where it will join; queued requests count toward that
//!   mass), falling back to least-loaded only when every shard is at
//!   its packing threshold. Full batches share supersteps; evenly
//!   spread ones do not.
//! - **Straggler migration**: a lane whose pc has diverged from its
//!   batch's majority is evicted through the compaction path and
//!   re-admitted on a shard with at least as many lanes at its pc as
//!   it had partners at home. Shards drained down to a small tail
//!   instead donate their lanes to a paired-up batch (consolidation),
//!   so drain tails overlap rather than serialize — but recipients are
//!   capped at half capacity and load only ever flows *downhill* in
//!   accumulated supersteps, so no single shard can accrete the whole
//!   fleet's stragglers (the hub failure mode).
//! - **Work stealing**: an idle shard takes the newest half of the
//!   deepest queue. Stolen requests keep their submission stamps and
//!   sequence numbers, so the fleet's global submission-order guarantee
//!   is untouched.
//! - **Batch splits**: when queues are empty and a shard sits idle, the
//!   busiest pc-diverse batch donates its minority-pc lanes to the
//!   idle shard — the late-drain rescue that parallelizes the fleet's
//!   slowest tail instead of letting one shard grind it alone.
//!
//! Everything here is a pure function of a deterministic snapshot —
//! plans depend only on submission order and shard state, never on
//! thread timing — and migration itself is bit-identity-safe because a
//! lane's RNG draws are keyed by `(seed, member_key, counter)`, not by
//! placement (asserted by `autobatch-core`'s migration tests and this
//! crate's property suite).

use std::collections::BTreeMap;

/// How a [`ShardedServer`](crate::ShardedServer) routes and rebalances
/// work across its shards.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SchedulingPolicy {
    /// Route each request to the least-loaded healthy shard; never move
    /// work once placed. Deterministic and simple — the default.
    #[default]
    LeastLoaded,
    /// PC-affinity routing with straggler migration and work stealing
    /// (see the [module docs](self)).
    PcAffinity(AffinityConfig),
}

/// Tuning knobs of [`SchedulingPolicy::PcAffinity`]. The defaults are
/// what `shard_throughput` gates in CI; they favor packed batches and
/// conservative migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffinityConfig {
    /// Supersteps each shard runs between rebalance points (clamped to
    /// at least 1). Smaller quanta react faster to divergence but pay
    /// more scheduling overhead.
    pub quantum: u64,
    /// Packing factor for routing: a shard accepts new requests while
    /// `load < ceil(capacity × pack)`. `1.0` packs shards exactly to
    /// their batch capacity; larger values queue behind busy shards
    /// (deeper packing), smaller values spread earlier.
    pub pack: f64,
    /// A diverged lane migrates only to a shard holding at least this
    /// many running lanes at the lane's pc (clamped to at least 1).
    pub min_match: usize,
    /// Shards running at most this many lanes are *drain tails*: all
    /// their lanes become migration candidates (consolidation), not
    /// just pc-diverged ones.
    pub max_donor_live: usize,
    /// Most queued requests an idle shard steals per rebalance.
    pub steal_batch: usize,
}

impl Default for AffinityConfig {
    fn default() -> AffinityConfig {
        AffinityConfig {
            quantum: 12,
            pack: 1.25,
            min_match: 1,
            max_donor_live: 1,
            steal_batch: 4,
        }
    }
}

/// Point-in-time view of one shard, the input to the planners. Built by
/// the sharded server between quantum rounds.
#[derive(Debug, Clone)]
pub(crate) struct ShardView {
    /// Whether the shard can run and accept work (healthy and not
    /// errored in the current drive).
    pub active: bool,
    /// `(ticket, pc)` of every running lane.
    pub lanes: Vec<(u64, usize)>,
    /// Members currently inside the machine (running + unretired).
    pub live: usize,
    /// Queue depth.
    pub pending: usize,
    /// Supersteps this shard has executed so far — a deterministic
    /// accumulated-load signal (simulated cost, not host time), used to
    /// steer consolidation toward the least-loaded recipient.
    pub steps: u64,
}

/// One planned lane migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Migration {
    /// Donor shard index.
    pub from: usize,
    /// The lane's ticket on the donor.
    pub ticket: u64,
    /// Recipient shard index.
    pub to: usize,
}

/// One planned steal: move the newest `n` queued requests from the back
/// of `from`'s queue to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Steal {
    /// Donor shard index.
    pub from: usize,
    /// Thief shard index (idle).
    pub to: usize,
    /// How many requests to move.
    pub n: usize,
}

/// Migration-candidate ranking key, compared lexicographically (larger
/// wins): class (pc-match beats plain consolidation), partners at the
/// lane's pc, recipient batch size, then *fewest* accumulated steps and
/// *lowest* shard index as deterministic tie-breaks.
type CandidateKey = (
    u8,
    usize,
    usize,
    std::cmp::Reverse<u64>,
    std::cmp::Reverse<usize>,
);

fn histogram(lanes: &[(u64, usize)]) -> BTreeMap<usize, usize> {
    let mut h = BTreeMap::new();
    for &(_, pc) in lanes {
        *h.entry(pc).or_insert(0) += 1;
    }
    h
}

/// The pc with the most lanes, ties toward the lowest pc.
fn majority(hist: &BTreeMap<usize, usize>) -> Option<usize> {
    hist.iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(&pc, _)| pc)
}

/// Plan straggler migrations over a snapshot. Deterministic: shards are
/// scanned in index order, lanes in lane order, and every move strictly
/// improves the moved lane's sharing (for pc-matches, at least as many
/// partners at the destination as the donor's whole count at that pc;
/// for consolidation, a strictly larger batch under the total order
/// `(running, fewer accumulated steps, lower index)`). Recipient
/// capacity is tracked as moves are planned — a plan never overfills a
/// machine past `cap` — and a shard that has already executed more
/// supersteps than the donor never receives, so load flows downhill.
pub(crate) fn plan_migrations(
    views: &[ShardView],
    cap: usize,
    cfg: &AffinityConfig,
) -> Vec<Migration> {
    let hists: Vec<BTreeMap<usize, usize>> = views.iter().map(|v| histogram(&v.lanes)).collect();
    let majorities: Vec<Option<usize>> = hists.iter().map(majority).collect();
    let mut live: Vec<usize> = views.iter().map(|v| v.live).collect();
    let min_match = cfg.min_match.max(1);
    // Consolidation recipients are capped at half capacity: drain tails
    // *pair up* across the fleet rather than pile onto one shard. A
    // pc-mixed merged batch barely shares supersteps, so an unbounded
    // merge would serialize on one shard the tail work that used to
    // overlap — paying in fleet wall-clock everything it saved in
    // launches. (pc-matched moves are exempt: those lanes *do* share.)
    let tail_cap = cap.div_ceil(2);
    let mut plan = Vec::new();
    for (d, view) in views.iter().enumerate() {
        if !view.active || view.lanes.is_empty() {
            continue;
        }
        let running = view.lanes.len();
        let consolidating = running <= cfg.max_donor_live;
        for &(ticket, pc) in &view.lanes {
            let diverged = majorities[d].is_some_and(|m| pc != m);
            if !consolidating && !diverged {
                continue;
            }
            let d_count = hists[d].get(&pc).copied().unwrap_or(1);
            // Best recipient: prefer a pc-match (class 1) over a plain
            // bigger batch (class 0), then more partners at the lane's
            // pc, then the larger batch, then the *least-stepped* shard
            // (accumulated load), then the lowest index. Without the
            // load term, equal-running ties resolve to the same shard
            // round after round and every drain tail in the fleet
            // funnels into it — a hub that serializes the tail work.
            let mut best: Option<CandidateKey> = None;
            let mut best_to = None;
            for (r, rv) in views.iter().enumerate() {
                if r == d || !rv.active || live[r] >= cap {
                    continue;
                }
                // Load may only flow *downhill* in accumulated steps:
                // a shard that has already done more work than the
                // donor never receives. Without this, the first shard
                // to collect a few sharing partners accretes every
                // straggler in the fleet (lanes chase partners into the
                // biggest batch as seats free) and the fleet serializes
                // behind one hub shard.
                if rv.steps > view.steps {
                    continue;
                }
                let partners = hists[r].get(&pc).copied().unwrap_or(0);
                let r_running = rv.lanes.len();
                let pc_match = partners >= min_match && partners >= d_count;
                let bigger_batch = consolidating
                    && live[r] >= 1
                    && live[r] < tail_cap
                    && (r_running > running
                        || (r_running == running && (rv.steps, r) < (view.steps, d)));
                let class = if pc_match {
                    1u8
                } else if bigger_batch {
                    0u8
                } else {
                    continue;
                };
                let key = (
                    class,
                    partners,
                    r_running,
                    std::cmp::Reverse(rv.steps),
                    std::cmp::Reverse(r),
                );
                if best.is_none_or(|b| key > b) {
                    best = Some(key);
                    best_to = Some(r);
                }
            }
            if let Some(to) = best_to {
                plan.push(Migration {
                    from: d,
                    ticket,
                    to,
                });
                live[to] += 1;
                live[d] = live[d].saturating_sub(1);
            }
        }
    }
    plan
}

/// Plan batch splits for idle shards when there is nothing left to
/// steal: each idle shard takes the *minority-pc* lanes (the
/// stragglers) of the busiest diverged batch. This is the late-drain
/// rescue — once the fleet's queues are empty, the slowest shard is
/// typically grinding a pc-diverse batch of deep lanes that share
/// almost nothing, while other shards sit idle. Moving the stragglers
/// out parallelizes that tail without touching converged batches
/// (lanes all at one pc share perfectly and are never split). The
/// donor keeps at least half its batch, including the whole majority
/// group, so a split never creates a smaller batch than it leaves
/// behind and cannot oscillate.
pub(crate) fn plan_splits(
    views: &[ShardView],
    cap: usize,
    _cfg: &AffinityConfig,
) -> Vec<Migration> {
    // Queue steals take strict precedence: if anything is pending
    // anywhere, idle shards refill from queues instead.
    if views.iter().any(|v| v.active && v.pending > 0) {
        return Vec::new();
    }
    let mut lanes: Vec<Vec<(u64, usize)>> = views.iter().map(|v| v.lanes.clone()).collect();
    let mut plan = Vec::new();
    for (t, tv) in views.iter().enumerate() {
        if !tv.active || tv.live > 0 || !lanes[t].is_empty() {
            continue;
        }
        // Busiest diverged donor: most running lanes, ties toward the
        // lowest index. Converged batches (a single pc) are exempt.
        let donor = (0..views.len())
            .filter(|&d| {
                d != t && views[d].active && lanes[d].len() >= 3 && histogram(&lanes[d]).len() >= 2
            })
            .max_by(|&a, &b| lanes[a].len().cmp(&lanes[b].len()).then(b.cmp(&a)));
        let Some(d) = donor else { continue };
        let hist = histogram(&lanes[d]);
        let Some(maj) = majority(&hist) else { continue };
        let n = (lanes[d].len() / 2).min(cap);
        let moved: Vec<(u64, usize)> = lanes[d]
            .iter()
            .filter(|&&(_, pc)| pc != maj)
            .take(n)
            .copied()
            .collect();
        for &(ticket, _) in &moved {
            plan.push(Migration {
                from: d,
                ticket,
                to: t,
            });
        }
        lanes[t] = moved.clone();
        lanes[d].retain(|l| !moved.contains(l));
    }
    plan
}

/// Plan work stealing over a snapshot: each **idle** shard (nothing
/// running, nothing queued) takes up to half of the deepest active
/// queue, capped by `steal_batch` and the shard's batch capacity.
/// Donors need at least two queued requests — a single pending request
/// is cheaper admitted where it sits than moved. Deterministic: thieves
/// are scanned in index order; the deepest donor wins, ties toward the
/// lowest index; queue depths are tracked as steals are planned.
pub(crate) fn plan_steals(views: &[ShardView], cap: usize, cfg: &AffinityConfig) -> Vec<Steal> {
    let mut pending: Vec<usize> = views.iter().map(|v| v.pending).collect();
    let mut plan = Vec::new();
    for (t, view) in views.iter().enumerate() {
        if !view.active || view.live > 0 || pending[t] > 0 {
            continue;
        }
        let donor = (0..views.len())
            .filter(|&d| d != t && views[d].active && pending[d] >= 2)
            .max_by(|&a, &b| pending[a].cmp(&pending[b]).then(b.cmp(&a)));
        let Some(d) = donor else { continue };
        let n = (pending[d] / 2).min(cfg.steal_batch.max(1)).min(cap.max(1));
        if n == 0 {
            continue;
        }
        pending[d] -= n;
        pending[t] += n;
        plan.push(Steal { from: d, to: t, n });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(lanes: &[(u64, usize)], live: usize, pending: usize) -> ShardView {
        ShardView {
            active: true,
            lanes: lanes.to_vec(),
            live,
            pending,
            steps: 0,
        }
    }

    #[test]
    fn diverged_lane_moves_to_the_shard_with_more_partners() {
        // Shard 0: majority at pc 2, one straggler at pc 5.
        // Shard 1: three lanes at pc 5 with a free seat.
        let views = [
            view(&[(0, 2), (1, 2), (2, 2), (3, 5)], 4, 0),
            view(&[(10, 5), (11, 5), (12, 5)], 3, 0),
        ];
        let plan = plan_migrations(&views, 4, &AffinityConfig::default());
        assert_eq!(
            plan,
            vec![Migration {
                from: 0,
                ticket: 3,
                to: 1
            }]
        );
    }

    #[test]
    fn migration_respects_recipient_capacity() {
        let views = [
            view(&[(0, 2), (1, 2), (2, 2), (3, 5)], 4, 0),
            view(&[(10, 5), (11, 5), (12, 5), (13, 5)], 4, 0),
        ];
        // Recipient already at cap 4: no move.
        assert!(plan_migrations(&views, 4, &AffinityConfig::default()).is_empty());
    }

    #[test]
    fn lane_never_moves_to_fewer_partners() {
        // The straggler has one partner at home (itself counts as the
        // donor's mass at pc 5 = 2); a shard with a single pc-5 lane is
        // not an improvement, so nothing moves.
        let views = [
            view(&[(0, 2), (1, 2), (2, 5), (3, 5)], 4, 0),
            view(&[(10, 5)], 1, 0),
        ];
        let cfg = AffinityConfig {
            max_donor_live: 0, // disable consolidation; isolate the rule
            ..AffinityConfig::default()
        };
        assert!(plan_migrations(&views, 4, &cfg).is_empty());
    }

    #[test]
    fn drain_tails_pair_up_under_the_recipient_cap() {
        // Three shards each down to one straggler at distinct pcs: no
        // pc-match anywhere, but consolidation merges tails — toward the
        // least-stepped recipient, lowest index on ties. The recipient
        // cap (`cap.div_ceil(2)` = 2 here) closes shard 0 after one
        // move, so tails *pair up* instead of all funneling into one
        // shard, and shard 2's tail stays put (shard 1 is empty, never
        // a consolidation target).
        let views = [
            view(&[(0, 3)], 1, 0),
            view(&[(10, 4)], 1, 0),
            view(&[(20, 5)], 1, 0),
        ];
        let plan = plan_migrations(&views, 4, &AffinityConfig::default());
        assert_eq!(
            plan,
            vec![Migration {
                from: 1,
                ticket: 10,
                to: 0
            }]
        );
        // And the merged pair does not bounce lanes back: it is larger
        // than any tail, and its own lanes only leave for strictly more
        // partners.
        let after = [
            view(&[(0, 3), (1, 4)], 2, 0),
            view(&[], 0, 0),
            view(&[(20, 5)], 1, 0),
        ];
        assert!(plan_migrations(&after, 4, &AffinityConfig::default()).is_empty());
    }

    #[test]
    fn equal_tails_consolidate_toward_the_least_stepped_shard() {
        // Three equal one-lane tails, but shard 0 has done far more
        // work: the merge goes *into* the lightest shard 2, which the
        // recipient cap then closes. Shard 1's tail stays put — its
        // only remaining candidate (heavy shard 0) is uphill in
        // accumulated steps, and load never flows uphill.
        let mut views = vec![
            view(&[(0, 3)], 1, 0),
            view(&[(10, 4)], 1, 0),
            view(&[(20, 5)], 1, 0),
        ];
        views[0].steps = 50_000;
        views[1].steps = 400;
        views[2].steps = 100;
        let plan = plan_migrations(&views, 4, &AffinityConfig::default());
        assert_eq!(
            plan,
            vec![Migration {
                from: 0,
                ticket: 0,
                to: 2
            }]
        );
    }

    #[test]
    fn idle_shard_splits_the_busiest_diverged_batch() {
        // Shard 0 grinds a 4-lane pc-diverse batch; shard 1 is idle and
        // nothing is queued anywhere: the minority-pc stragglers move
        // out, the majority group stays together.
        let views = [
            view(&[(0, 2), (1, 2), (2, 7), (3, 9)], 4, 0),
            view(&[], 0, 0),
        ];
        let plan = plan_splits(&views, 4, &AffinityConfig::default());
        assert_eq!(
            plan,
            vec![
                Migration {
                    from: 0,
                    ticket: 2,
                    to: 1
                },
                Migration {
                    from: 0,
                    ticket: 3,
                    to: 1
                },
            ]
        );
    }

    #[test]
    fn splits_never_touch_converged_or_small_batches_or_fire_over_queues() {
        // Converged batch (single pc): sharing is perfect, never split.
        let converged = [
            view(&[(0, 2), (1, 2), (2, 2), (3, 2)], 4, 0),
            view(&[], 0, 0),
        ];
        assert!(plan_splits(&converged, 4, &AffinityConfig::default()).is_empty());
        // Two-lane donors are exempt: a split would leave a solo tail
        // that consolidation merges right back — a churn cycle.
        let pair = [view(&[(0, 2), (1, 7)], 2, 0), view(&[], 0, 0)];
        assert!(plan_splits(&pair, 4, &AffinityConfig::default()).is_empty());
        // Anything queued anywhere: queue steals take precedence.
        let queued = [
            view(&[(0, 2), (1, 2), (2, 7), (3, 9)], 4, 1),
            view(&[], 0, 0),
        ];
        assert!(plan_splits(&queued, 4, &AffinityConfig::default()).is_empty());
    }

    #[test]
    fn idle_shard_steals_half_the_deepest_queue() {
        let views = [
            view(&[(0, 2)], 4, 6),
            view(&[], 0, 0),
            view(&[(9, 1)], 2, 2),
        ];
        let plan = plan_steals(&views, 4, &AffinityConfig::default());
        assert_eq!(
            plan,
            vec![Steal {
                from: 0,
                to: 1,
                n: 3
            }]
        );
        // Busy shards never steal; a lone queued request is never taken.
        let views = [view(&[], 0, 1), view(&[(0, 2)], 1, 0)];
        assert!(plan_steals(&views, 4, &AffinityConfig::default()).is_empty());
    }

    #[test]
    fn inactive_shards_neither_donate_nor_receive() {
        let mut views = vec![
            view(&[(0, 5)], 1, 0),
            view(&[(10, 5), (11, 5), (12, 5)], 3, 4),
        ];
        views[1].active = false;
        assert!(plan_migrations(&views, 4, &AffinityConfig::default()).is_empty());
        views[0].active = false;
        views[1].active = true;
        let thief = view(&[], 0, 0);
        let all = [views[0].clone(), views[1].clone(), thief];
        let plan = plan_steals(&all, 4, &AffinityConfig::default());
        assert_eq!(
            plan,
            vec![Steal {
                from: 1,
                to: 2,
                n: 2
            }]
        );
    }
}
