//! Sharded multi-worker serving: scaling the batch server *across*
//! machines, not just lanes.
//!
//! A single [`BatchServer`] saturates one host thread: every superstep
//! is host control (block selection, masking) followed by one fused
//! device launch. [`ShardedServer`] partitions the request stream across
//! N worker threads, each owning its own `BatchServer` (and so its own
//! `PcMachine`), and drives them concurrently with scoped threads — the
//! Send-safe machine handoff asserted in `autobatch-core`.
//!
//! Three design points:
//!
//! - **Routing** is least-loaded: each shard's load is its live member
//!   count from [`Trace`] membership accounting plus its queue depth, so
//!   the routing signal comes from the same accounting that prices
//!   launches. Ties break toward the lowest shard index, which makes
//!   routing — and therefore the whole sharded run — deterministic.
//! - **Aggregation** preserves per-request ordering: every submission
//!   gets a global sequence number, and [`ShardedServer::take_ready`]
//!   merges the shards' completions back into submission order.
//! - **Poison/drain**: one shard's execution error must not lose another
//!   shard's completed work. A failed shard's already-completed
//!   responses are salvaged into the shared ready buffer, its queued
//!   requests can be re-routed to healthy shards
//!   ([`ShardedServer::drain_poisoned`]), and routing skips poisoned
//!   shards from then on.
//!
//! Shard sizing is not hardcoded: [`ShardPlan::for_backend`] derives the
//! worker count and per-shard batch width from the [`Backend`] cost
//! profile, in the spirit of backend-description-driven retargeting.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use autobatch_accel::{Backend, Trace};
use autobatch_chaos::FaultPoint;
use autobatch_core::{ExecOptions, KernelRegistry};
use autobatch_ir::pcab::Program;

use crate::affinity::{plan_migrations, plan_splits, plan_steals, ShardView};
use crate::{
    AdmissionPolicy, AffinityConfig, BatchServer, Request, RequestBudget, Response, Result,
    SchedulingPolicy, ServeError,
};

/// Supersteps per round when the least-loaded fleet is driven with a
/// cancellation hook ([`ShardedServer::run_until_idle_with`]): the
/// bound on how stale a cooperative cancellation can go before the
/// fleet observes it.
const CANCEL_QUANTUM: u64 = 64;

/// One shard's outcome for a quantum round: the responses it completed
/// plus the supersteps it actually ran; `None` for shards sitting out
/// the round (dead or poisoned).
type RoundOutcome = Option<Result<(Vec<Response>, u64)>>;

/// The empty cancellation hook [`ShardedServer::run_until_idle`] drives
/// the PC-affinity rounds with.
fn noop() -> Vec<u64> {
    Vec::new()
}

/// Recover a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A backend-derived sharding configuration: how many worker threads to
/// run and how wide each worker's batch should be.
///
/// The sizing rule prices the serving trade-off the [`Backend`] profile
/// exposes: host control per superstep (`superstep_overhead`) serializes
/// *within* a shard but runs concurrently *across* shards, so
/// host-control-bound backends want many narrow shards; per-launch
/// device dispatch (`launch_overhead`) is amortized over however many
/// members share the fused launch, so launch-bound backends want few
/// wide shards. The per-shard width floor is their ratio:
/// `ceil(launch_overhead / superstep_overhead)`.
///
/// A backend with no host control loop at all (`superstep_overhead ==
/// 0`, e.g. the native scalar baseline) has nothing for extra workers to
/// parallelize away in this model, so it plans a single shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Worker threads, each owning one `BatchServer`.
    pub workers: usize,
    /// Per-shard batch capacity (live members per worker).
    pub shard_batch: usize,
}

impl ShardPlan {
    /// Size a plan for `backend`, expecting `expected_concurrent`
    /// requests in flight at a time, with at most `max_workers` worker
    /// threads (typically the host's core budget).
    ///
    /// Guarantees: `1 <= workers <= max(max_workers, 1)` and
    /// `workers * shard_batch >= max(expected_concurrent, 1)`.
    pub fn for_backend(
        backend: &Backend,
        expected_concurrent: usize,
        max_workers: usize,
    ) -> ShardPlan {
        let expected = expected_concurrent.max(1);
        let max_workers = max_workers.max(1);
        let width_floor = if backend.superstep_overhead > 0.0 {
            let f = (backend.launch_overhead / backend.superstep_overhead).ceil();
            (f as usize).clamp(1, expected)
        } else {
            expected
        };
        let workers = (expected / width_floor).clamp(1, max_workers);
        let shard_batch = expected.div_ceil(workers);
        ShardPlan {
            workers,
            shard_batch,
        }
    }

    /// The admission policy the plan implies for each shard: join at
    /// entry whenever the shard has a free lane, bounded by the planned
    /// per-shard width.
    pub fn policy(&self) -> AdmissionPolicy {
        AdmissionPolicy::JoinAtEntry {
            max_batch: self.shard_batch,
            min_utilization: 1.0,
        }
    }
}

/// One worker's state: its server, its private trace, and the last error
/// it surfaced (poisoning or recoverable).
#[derive(Debug)]
struct Shard<'p> {
    server: BatchServer<'p>,
    trace: Trace,
    last_error: Option<ServeError>,
    /// Sticky copy of the most recent error ever surfaced — unlike
    /// `last_error` it survives later successful runs and respawns, so
    /// health reporting can say *why* a shard was last respawned.
    fault_record: Option<ServeError>,
    /// How many times this slot's server has been rebuilt.
    respawns: u64,
}

/// Observability snapshot of one shard slot, for fleet health reporting
/// (see [`ShardedServer::health`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// Times this slot's `BatchServer` + `PcMachine` were rebuilt.
    pub respawns: u64,
    /// The most recent error the slot ever surfaced (sticky across
    /// respawns and later successes), if any.
    pub last_error: Option<ServeError>,
    /// Whether the slot can currently accept and run work.
    pub healthy: bool,
    /// Lanes the current server evicted under governance (budget
    /// blowups + cancellations). Resets when the slot is respawned —
    /// it describes the live machine, not the slot's lifetime.
    pub evictions: u64,
    /// Supersteps charged across the lanes currently in flight on this
    /// slot — the live budget spend a dashboard watches climb.
    pub spent_supersteps: u64,
}

impl Shard<'_> {
    /// Routing load: live members per membership accounting + queued.
    fn load(&self) -> usize {
        self.trace.live_members() as usize + self.server.pending()
    }

    fn poisoned(&self) -> bool {
        self.server.poisoned().is_some()
    }
}

/// A serving runtime that partitions requests across worker threads,
/// each owning its own [`BatchServer`] + `PcMachine`.
///
/// Results are deterministic: routing is a pure function of submission
/// order and shard loads, each shard's execution is deterministic, and
/// aggregation orders responses by submission sequence — thread
/// scheduling cannot perturb anything the caller observes. Per-request
/// results are bit-identical to an unsharded run because every lane's
/// draws are keyed by the request seed, not by placement.
///
/// # Examples
///
/// ```
/// use autobatch_accel::Backend;
/// use autobatch_core::{lower, KernelRegistry, LoweringOptions, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_serve::{AdmissionPolicy, Request, ShardedServer};
/// use autobatch_tensor::Tensor;
///
/// let (program, _) = lower(&fibonacci_program(), LoweringOptions::default())?;
/// let policy = AdmissionPolicy::JoinAtEntry { max_batch: 2, min_utilization: 1.0 };
/// let mut server = ShardedServer::new(
///     &program,
///     KernelRegistry::new(),
///     ExecOptions::default(),
///     policy,
///     2,
///     Backend::hybrid_cpu(),
/// )?;
/// for (id, n) in [(0u64, 6i64), (1, 9), (2, 3)] {
///     server.submit(Request { id, inputs: vec![Tensor::from_i64(&[n], &[1])?], seed: id })?;
/// }
/// let done = server.run_until_idle()?;
/// // Aggregation preserves submission order across shards.
/// let ids: Vec<u64> = done.iter().map(|r| r.id).collect();
/// assert_eq!(ids, vec![0, 1, 2]);
/// assert_eq!(done[1].outputs[0].as_i64()?, &[55]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardedServer<'p> {
    shards: Vec<Shard<'p>>,
    backend: Backend,
    /// Construction inputs, kept so a dead shard can be rebuilt in
    /// place ([`ShardedServer::respawn_shard`]) with a fresh
    /// `BatchServer` + `PcMachine`.
    program: &'p Program,
    registry: KernelRegistry,
    opts: ExecOptions,
    policy: AdmissionPolicy,
    /// How requests are routed and whether work moves between shards
    /// once placed ([`ShardedServer::set_scheduling`]).
    scheduling: SchedulingPolicy,
    /// The fleet clock high-water mark, replayed onto respawned shards.
    clock: u64,
    /// Next fault-stream epoch handed to a respawned shard, so a
    /// deterministic [`FaultPlan`](autobatch_chaos::FaultPlan) does not
    /// re-kill the replacement at the exact same superstep forever.
    next_fault_epoch: u64,
    /// Fleet-level run rounds, the counter behind worker-panic and
    /// worker-slowness injection.
    fault_round: u64,
    /// Lifetime completions on servers that were since respawned.
    retired_completed: u64,
    /// Peak queue depth on servers that were since respawned.
    retired_peak: usize,
    /// Governance evictions on servers that were since respawned.
    retired_evictions: u64,
    /// Governance failures salvaged from respawned shards, awaiting
    /// [`ShardedServer::take_failed`].
    failed: Vec<(u64, ServeError)>,
    /// Per-shard load-shedding budget (mirrors each shard's
    /// [`BatchServer::set_queue_budget`]); kept here so routing can
    /// report a fleet-level [`ServeError::Overloaded`].
    queue_budget: Option<usize>,
    /// Per-request resource ceilings (mirrors each shard's
    /// [`BatchServer::set_budget`]); kept here so a respawned shard
    /// re-enforces the same budget.
    budget: RequestBudget,
    /// Next global submission sequence number.
    next_seq: u64,
    /// Request id → submission sequence numbers, FIFO per id. Unique
    /// ids give strict per-request ordering; duplicate in-flight ids
    /// occupy that id's submission slots in completion order (the
    /// server cannot tell twin requests apart), so callers that need
    /// strict request↔response pairing must use unique ids.
    order: BTreeMap<u64, VecDeque<u64>>,
    /// Completed responses awaiting [`ShardedServer::take_ready`],
    /// tagged with their submission sequence.
    ready: Vec<(u64, Response)>,
}

impl<'p> ShardedServer<'p> {
    /// Create a sharded server: `workers` shards, each a [`BatchServer`]
    /// under `policy`, each priced against its own [`Trace`] of
    /// `backend`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadPolicy`] if `workers` is zero or the
    /// per-shard policy is unusable.
    pub fn new(
        program: &'p Program,
        registry: KernelRegistry,
        opts: ExecOptions,
        policy: AdmissionPolicy,
        workers: usize,
        backend: Backend,
    ) -> Result<ShardedServer<'p>> {
        if workers == 0 {
            return Err(ServeError::BadPolicy(
                "a sharded server needs at least one worker".into(),
            ));
        }
        let base_epoch = opts.fault.epoch;
        let shards = (0..workers)
            .map(|i| {
                // Each shard gets its own fault-stream epoch so the
                // execution-fault schedules of sibling machines are
                // independent (an inert plan is unaffected).
                let shard_opts = ExecOptions {
                    fault: opts.fault.with_epoch(base_epoch + i as u64),
                    ..opts
                };
                Ok(Shard {
                    server: BatchServer::new(program, registry.clone(), shard_opts, policy)?,
                    trace: Trace::new(backend),
                    last_error: None,
                    fault_record: None,
                    respawns: 0,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedServer {
            shards,
            backend,
            program,
            registry,
            opts,
            policy,
            scheduling: SchedulingPolicy::default(),
            clock: 0,
            next_fault_epoch: base_epoch + workers as u64,
            fault_round: 0,
            retired_completed: 0,
            retired_peak: 0,
            retired_evictions: 0,
            failed: Vec::new(),
            queue_budget: None,
            budget: RequestBudget::unlimited(),
            next_seq: 0,
            order: BTreeMap::new(),
            ready: Vec::new(),
        })
    }

    /// Advance every shard's virtual clock to `now` (monotonic). See
    /// [`BatchServer::set_clock`]. Respawned shards inherit the high-
    /// water mark, so a rebuild never turns the clock back.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = self.clock.max(now);
        for s in &mut self.shards {
            s.server.set_clock(now);
        }
    }

    /// Bound every shard's queue depth. Once each healthy shard's queue
    /// is at the budget, [`ShardedServer::submit`] rejects with
    /// [`ServeError::Overloaded`] instead of queueing deeper. `None`
    /// (the default) disables shedding.
    pub fn set_queue_budget(&mut self, budget: Option<usize>) {
        self.queue_budget = budget;
        for s in &mut self.shards {
            s.server.set_queue_budget(budget);
        }
    }

    /// Set the per-request resource ceilings every shard enforces at
    /// superstep boundaries (see [`RequestBudget`]). Respawned shards
    /// inherit the budget, so a rebuild never un-governs the fleet.
    pub fn set_budget(&mut self, budget: RequestBudget) {
        self.budget = budget;
        for s in &mut self.shards {
            s.server.set_budget(budget);
        }
    }

    /// The per-request resource ceilings in force.
    pub fn budget(&self) -> RequestBudget {
        self.budget
    }

    /// Request cooperative cancellation of a request anywhere in the
    /// fleet (see [`BatchServer::cancel`]). Returns `false` when no
    /// shard knows the id — already answered, or never submitted.
    pub fn cancel(&mut self, id: u64) -> bool {
        self.shards.iter_mut().any(|s| s.server.cancel(id))
    }

    /// Drain the typed terminal failures governance produced across the
    /// fleet (budget evictions and cancellations), in shard-index order,
    /// including failures salvaged from shards that were since
    /// respawned. Each drained id's submission sequence is released —
    /// the request will never produce a response, so holding its slot
    /// would mis-order a later reuse of the id.
    pub fn take_failed(&mut self) -> Vec<(u64, ServeError)> {
        for i in 0..self.shards.len() {
            self.salvage_failed(i);
        }
        std::mem::take(&mut self.failed)
    }

    /// Move shard `i`'s governance failures into the fleet buffer,
    /// releasing each id's submission sequence as it lands.
    fn salvage_failed(&mut self, i: usize) {
        for (id, e) in self.shards[i].server.take_failed() {
            Self::pop_seq(&mut self.order, id);
            self.failed.push((id, e));
        }
    }

    /// Lanes evicted under governance over the fleet's lifetime
    /// (including on servers since respawned — unlike
    /// [`ShardHealth::evictions`], which is per-live-server).
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.server.evictions())
            .sum::<u64>()
            + self.retired_evictions
    }

    /// Select the fleet's scheduling policy (default
    /// [`SchedulingPolicy::LeastLoaded`]). Switching is safe between
    /// runs: scheduling changes only *where* requests execute — results
    /// and response order are placement-independent (lane draws are
    /// keyed by the request seed, and aggregation sorts by submission
    /// sequence).
    pub fn set_scheduling(&mut self, scheduling: SchedulingPolicy) {
        self.scheduling = scheduling;
    }

    /// The current scheduling policy.
    pub fn scheduling(&self) -> SchedulingPolicy {
        self.scheduling
    }

    /// Histogram of running lanes per pc top on shard `i` — the
    /// affinity signal the PC-affinity scheduler keys on.
    pub fn shard_pc_histogram(&self, i: usize) -> BTreeMap<usize, usize> {
        self.shards[i].server.pc_histogram()
    }

    /// The deepest any single shard's queue has ever been (including on
    /// servers since respawned).
    pub fn peak_pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.server.peak_pending())
            .max()
            .unwrap_or(0)
            .max(self.retired_peak)
    }

    /// Create a sharded server sized by a backend-derived [`ShardPlan`].
    ///
    /// # Errors
    ///
    /// As [`ShardedServer::new`].
    pub fn with_plan(
        program: &'p Program,
        registry: KernelRegistry,
        opts: ExecOptions,
        plan: &ShardPlan,
        backend: Backend,
    ) -> Result<ShardedServer<'p>> {
        ShardedServer::new(
            program,
            registry,
            opts,
            plan.policy(),
            plan.workers,
            backend,
        )
    }

    /// Number of shards (worker threads per run).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Queued requests across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.server.pending()).sum()
    }

    /// Requests accepted by [`ShardedServer::submit`] over the server's
    /// lifetime. Counted at the router, not by summing the shards'
    /// counters: [`ShardedServer::drain_poisoned`] re-submits moved
    /// requests to their new shard, which would double-count them.
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }

    /// Requests completed over the server's lifetime (including on
    /// servers since respawned).
    pub fn completed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.server.completed())
            .sum::<u64>()
            + self.retired_completed
    }

    /// Requests currently admitted into shard machines (fleet-wide).
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.server.in_flight()).sum()
    }

    /// The routing load of shard `i`: live members (per [`Trace`]
    /// membership accounting) plus queue depth.
    pub fn shard_load(&self, i: usize) -> usize {
        self.shards[i].load()
    }

    /// The private execution trace of shard `i`.
    pub fn shard_trace(&self, i: usize) -> &Trace {
        &self.shards[i].trace
    }

    /// Indices of shards poisoned by an execution error. A poisoned
    /// shard refuses to run; its queue can be re-routed with
    /// [`ShardedServer::drain_poisoned`].
    pub fn poisoned_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].poisoned())
            .collect()
    }

    /// The last error each shard surfaced, if any (poisoning or
    /// recoverable), by shard index.
    pub fn shard_errors(&self) -> Vec<(usize, ServeError)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.last_error.clone().map(|e| (i, e)))
            .collect()
    }

    /// Per-slot health snapshot: respawn count, the most recent error
    /// ever surfaced (sticky across respawns), and current liveness.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .map(|s| ShardHealth {
                respawns: s.respawns,
                last_error: s.fault_record.clone(),
                healthy: !s.poisoned(),
                evictions: s.server.evictions(),
                spent_supersteps: s.server.spent_supersteps(),
            })
            .collect()
    }

    /// Total shard respawns over the fleet's lifetime.
    pub fn respawns(&self) -> u64 {
        self.shards.iter().map(|s| s.respawns).sum()
    }

    /// Tear down shard `i`'s server and rebuild it in place with a
    /// fresh `BatchServer` + `PcMachine` (same program, registry,
    /// options, policy; fleet clock and queue budget restored; a fresh
    /// fault-stream epoch so a deterministic fault plan does not re-kill
    /// the replacement on schedule). The recovery move for a shard
    /// poisoned by an execution error or panic, or wedged by step-limit
    /// exhaustion.
    ///
    /// Work the old server had is triaged, never silently dropped:
    ///
    /// - **completed** responses are salvaged into the shared ready
    ///   buffer ([`ShardedServer::take_ready`] returns them);
    /// - **queued** requests (never admitted) are returned in
    ///   `(stranded, _)`, still holding their original submission
    ///   sequence — re-route them with [`ShardedServer::resubmit`];
    /// - **in-flight** requests (admitted, not retired) died with the
    ///   machine; their ids are returned in `(_, lost)` so a supervisor
    ///   can retry them from its own copies.
    pub fn respawn_shard(&mut self, i: usize) -> (Vec<Request>, Vec<u64>) {
        for r in self.shards[i].server.take_ready() {
            let seq = Self::pop_seq(&mut self.order, r.id);
            self.ready.push((seq, r));
        }
        // Governance verdicts already reached are salvaged too: a
        // budget-evicted request's terminal failure must not be lost
        // (and then retried) just because its shard later died.
        self.salvage_failed(i);
        let lost = self.shards[i].server.in_flight_ids();
        let mut stranded = Vec::new();
        while let Some(r) = self.shards[i].server.reject() {
            stranded.push(r);
        }
        let epoch = self.next_fault_epoch;
        self.next_fault_epoch += 1;
        let opts = ExecOptions {
            fault: self.opts.fault.with_epoch(epoch),
            ..self.opts
        };
        let mut server = BatchServer::new(self.program, self.registry.clone(), opts, self.policy)
            .expect("policy was validated when the fleet was built");
        server.set_clock(self.clock);
        server.set_queue_budget(self.queue_budget);
        server.set_budget(self.budget);
        self.retired_completed += self.shards[i].server.completed();
        self.retired_peak = self.retired_peak.max(self.shards[i].server.peak_pending());
        self.retired_evictions += self.shards[i].server.evictions();
        self.shards[i] = Shard {
            server,
            trace: Trace::new(self.backend),
            last_error: None,
            fault_record: self.shards[i].fault_record.take(),
            respawns: self.shards[i].respawns + 1,
        };
        (stranded, lost)
    }

    /// Re-route a request that was already accepted once (its original
    /// submission sequence is still on file, so aggregation order and
    /// the lifetime [`ShardedServer::submitted`] count are unchanged).
    /// Bypasses the queue budget — the request was admitted under it
    /// the first time.
    ///
    /// # Errors
    ///
    /// As [`ShardedServer::submit`], minus shedding.
    pub fn resubmit(&mut self, request: Request) -> Result<()> {
        self.route(request, false)
    }

    /// Forget the pending submission sequence of one `id` whose request
    /// reached a terminal failure outside a shard (e.g. its retry
    /// budget ran out) — without this, a later reuse of the id would
    /// pop the dead request's slot and mis-order its response.
    pub(crate) fn abandon_seq(&mut self, id: u64) {
        Self::pop_seq(&mut self.order, id);
    }

    /// The fleet-wide trace: per-shard traces folded with
    /// [`Trace::merge_parallel`] — wall-clock is the slowest shard
    /// (shards overlap), launches/supersteps/membership/utilization are
    /// summed across the fleet.
    pub fn aggregated_trace(&self) -> Trace {
        let mut out = Trace::new(self.backend);
        for s in &self.shards {
            out.merge_parallel(&s.trace);
        }
        out
    }

    /// Enqueue a request on the least-loaded healthy shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on arity mismatch;
    /// [`ServeError::Overloaded`] — without enqueueing — when every
    /// healthy shard's queue is at the configured
    /// [budget](ShardedServer::set_queue_budget); if every shard is
    /// poisoned, the first shard's poison error.
    pub fn submit(&mut self, request: Request) -> Result<()> {
        let seq = self.next_seq;
        let id = request.id;
        self.route(request, true)?;
        // Only a successful enqueue consumes a sequence number.
        self.next_seq += 1;
        self.order.entry(id).or_default().push_back(seq);
        Ok(())
    }

    /// Route per the scheduling policy — least-loaded healthy shard
    /// (lowest index on ties), or PC-affinity packing
    /// ([`ShardedServer::affinity_target`]). `shed` applies the queue
    /// budget; re-routing of already-accepted work
    /// ([`ShardedServer::drain_poisoned`]) bypasses it, since those
    /// requests were admitted under the budget once already.
    fn route(&mut self, request: Request, shed: bool) -> Result<()> {
        let healthy = |i: &usize| !self.shards[*i].poisoned();
        let under_budget = |i: &usize| match self.queue_budget {
            Some(budget) if shed => self.shards[*i].server.pending() < budget,
            _ => true,
        };
        let candidates: Vec<usize> = (0..self.shards.len())
            .filter(healthy)
            .filter(under_budget)
            .collect();
        let target = match self.scheduling {
            SchedulingPolicy::LeastLoaded => candidates
                .iter()
                .copied()
                .min_by_key(|&i| (self.shards[i].load(), i)),
            SchedulingPolicy::PcAffinity(cfg) => self.affinity_target(&candidates, cfg),
        };
        match target {
            Some(i) => self.shards[i].server.submit(request),
            None => {
                // Distinguish "every shard is dead" from "every healthy
                // shard is full".
                let min_depth = (0..self.shards.len())
                    .filter(healthy)
                    .map(|i| self.shards[i].server.pending())
                    .min();
                match (min_depth, self.queue_budget) {
                    (Some(depth), Some(budget)) => Err(ServeError::Overloaded { depth, budget }),
                    _ => Err(self
                        .shards
                        .iter()
                        .find_map(|s| s.server.poisoned().cloned())
                        .expect("no healthy shard implies a poisoned one")),
                }
            }
        }
    }

    /// PC-affinity routing: pack shards to capacity in submission
    /// order instead of spreading. Among *open* candidates (load below
    /// the packing threshold `ceil(capacity × pack)`), pick the shard
    /// with the most mass at the program's entry block — running lanes
    /// still at entry plus queued requests, which will join at entry —
    /// breaking ties toward lower load, then the lowest index. When no
    /// shard is open, fall back to least-loaded. Full batches share
    /// supersteps; spread ones pay the per-superstep host control many
    /// times over.
    fn affinity_target(&self, candidates: &[usize], cfg: AffinityConfig) -> Option<usize> {
        let cap = self.policy.max_batch().max(1);
        let open_cap = ((cap as f64) * cfg.pack).ceil().max(1.0) as usize;
        let entry = self.program.entry.0;
        candidates
            .iter()
            .copied()
            .filter(|&i| self.shards[i].load() < open_cap)
            .max_by_key(|&i| {
                let shard = &self.shards[i];
                let entry_mass = shard
                    .server
                    .pc_histogram()
                    .get(&entry)
                    .copied()
                    .unwrap_or(0)
                    + shard.server.pending();
                (
                    entry_mass,
                    std::cmp::Reverse(shard.load()),
                    std::cmp::Reverse(i),
                )
            })
            .or_else(|| {
                candidates
                    .iter()
                    .copied()
                    .min_by_key(|&i| (self.shards[i].load(), i))
            })
    }

    /// Drop and return the request at the head of shard `i`'s queue —
    /// the one a failed admission on that shard names. On a healthy
    /// shard this consumes the recorded error (the offender was the
    /// error), so [`ShardedServer::shard_errors`] stops reporting it;
    /// the sticky health record ([`ShardHealth::last_error`]) survives.
    pub fn reject_on(&mut self, shard: usize) -> Option<Request> {
        let rejected = self.shards[shard].server.reject();
        if rejected.is_some() && !self.shards[shard].poisoned() {
            self.shards[shard].last_error = None;
        }
        rejected
    }

    /// Re-route every request queued on a poisoned shard to the healthy
    /// shards, preserving each request's original submission sequence
    /// (aggregation order is unchanged). Returns how many requests
    /// moved.
    ///
    /// # Errors
    ///
    /// If no healthy shard exists, nothing is moved and the first
    /// poison error is returned — the queues stay drainable via
    /// [`ShardedServer::reject_on`].
    pub fn drain_poisoned(&mut self) -> Result<usize> {
        if self.shards.iter().all(|s| s.poisoned()) {
            return Err(self
                .shards
                .iter()
                .find_map(|s| s.server.poisoned().cloned())
                .expect("all shards poisoned"));
        }
        let mut stranded = Vec::new();
        for s in &mut self.shards {
            if s.poisoned() {
                while let Some(r) = s.server.reject() {
                    stranded.push(r);
                }
            }
        }
        let moved = stranded.len();
        for r in stranded {
            // Healthy shards exist and re-routing bypasses the queue
            // budget (these requests were accepted under it once), so
            // routing cannot fail for capacity; arity was validated at
            // the original submission.
            self.route(r, false)?;
        }
        Ok(moved)
    }

    /// Take every completed response aggregated so far, in submission
    /// order — including responses salvaged from shards that later
    /// failed. The way to recover finished work after
    /// [`ShardedServer::run_until_idle`] reports a shard error.
    pub fn take_ready(&mut self) -> Vec<Response> {
        for shard in &mut self.shards {
            for r in shard.server.take_ready() {
                let seq = Self::pop_seq(&mut self.order, r.id);
                self.ready.push((seq, r));
            }
        }
        self.ready.sort_by_key(|&(seq, _)| seq);
        std::mem::take(&mut self.ready)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    fn pop_seq(order: &mut BTreeMap<u64, VecDeque<u64>>, id: u64) -> u64 {
        match order.get_mut(&id) {
            Some(q) => {
                let seq = q.pop_front().unwrap_or(u64::MAX);
                if q.is_empty() {
                    order.remove(&id);
                }
                seq
            }
            // Defensive: an id this server never assigned sorts last.
            None => u64::MAX,
        }
    }

    /// Drive every shard to idle **concurrently**, one scoped worker
    /// thread per shard, and return all completed responses in
    /// submission order.
    ///
    /// Shards already poisoned by a previous call are skipped (they
    /// cannot run); their error is *not* re-raised, so healthy shards
    /// keep serving.
    ///
    /// # Panic containment
    ///
    /// Each worker body runs under `catch_unwind`: a panic while
    /// driving one shard — from a VM bug or an injected
    /// [`FaultPoint::WorkerPanic`] — is converted into a typed
    /// [`ServeError::Panicked`] that poisons *that shard only*, instead
    /// of unwinding through the scoped-thread fleet and aborting every
    /// sibling. The poisoned shard's completed work is salvaged like
    /// any other poisoning error, and [`ShardedServer::respawn_shard`]
    /// puts the slot back in rotation.
    ///
    /// # Errors
    ///
    /// If any shard errors this call, the first such error (by shard
    /// index) is returned — but no completed work is lost: every
    /// response finished by any shard, including work a failing shard
    /// completed before its error, stays buffered for
    /// [`ShardedServer::take_ready`]. Recoverable per-shard errors
    /// (failed admissions, step-limit exhaustion) follow the
    /// [`BatchServer::run_until_idle`] contract shard-locally:
    /// [`ShardedServer::reject_on`] unblocks the named shard.
    ///
    /// # Scheduling
    ///
    /// Under [`SchedulingPolicy::LeastLoaded`] (the default) each shard
    /// runs straight to idle on its own thread. Under
    /// [`SchedulingPolicy::PcAffinity`] the fleet runs in quantum-sized
    /// rounds with straggler migration and work stealing between rounds
    /// (see [`crate::affinity`]); results and response order are
    /// identical either way — scheduling only changes *where* lanes
    /// execute, and a lane's draws are keyed by its request seed, not
    /// its placement.
    pub fn run_until_idle(&mut self) -> Result<Vec<Response>> {
        match self.scheduling {
            SchedulingPolicy::LeastLoaded => self.run_fleet_to_idle(),
            SchedulingPolicy::PcAffinity(cfg) => {
                self.run_rounds(cfg.quantum, Some(cfg), false, &mut noop)
            }
        }
    }

    /// As [`ShardedServer::run_until_idle`], but with a cooperative
    /// cancellation hook: `poll` is called between scheduling rounds and
    /// every id it returns is [cancelled](ShardedServer::cancel) before
    /// the next round runs. Under [`SchedulingPolicy::LeastLoaded`] the
    /// fleet is driven in bounded rounds (instead of one burst per
    /// shard) so a cancellation lands within a bounded quantum of
    /// supersteps — the price of mid-drive responsiveness; results are
    /// identical either way, since round boundaries only change *when*
    /// the host observes each shard, never what the lanes compute.
    pub fn run_until_idle_with(
        &mut self,
        poll: &mut dyn FnMut() -> Vec<u64>,
    ) -> Result<Vec<Response>> {
        match self.scheduling {
            SchedulingPolicy::LeastLoaded => self.run_rounds(CANCEL_QUANTUM, None, true, poll),
            SchedulingPolicy::PcAffinity(cfg) => {
                self.run_rounds(cfg.quantum, Some(cfg), false, poll)
            }
        }
    }

    /// The least-loaded driver: one scoped thread per healthy shard,
    /// each running its server to idle in a single burst.
    fn run_fleet_to_idle(&mut self) -> Result<Vec<Response>> {
        let round = self.fault_round;
        self.fault_round += 1;
        let nshards = self.shards.len() as u64;
        let fault = self.opts.fault;
        let results: Vec<Option<Result<Vec<Response>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(i, shard)| {
                    scope.spawn(move || {
                        if shard.server.poisoned().is_some() {
                            return None;
                        }
                        // One fleet-unique counter per (round, shard):
                        // the chaos schedule for worker-level faults.
                        let counter = round * nshards + i as u64;
                        if fault.fires(FaultPoint::WorkerSlow, counter) {
                            std::thread::sleep(std::time::Duration::from_micros(
                                fault.delay_micros(counter),
                            ));
                        }
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            if fault.fires(FaultPoint::WorkerPanic, counter) {
                                panic!(
                                    "injected fault at {} (counter {counter})",
                                    FaultPoint::WorkerPanic.name()
                                );
                            }
                            shard.server.run_until_idle(Some(&mut shard.trace))
                        }));
                        Some(match run {
                            Ok(outcome) => outcome,
                            Err(payload) => {
                                // The machine may be mid-superstep;
                                // poison the shard so nothing drives it
                                // again before a respawn.
                                let e = ServeError::Panicked {
                                    what: panic_message(payload),
                                };
                                shard.server.poison(e.clone());
                                Err(e)
                            }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // catch_unwind above makes a worker panic
                    // unreachable here in practice; stay defensive
                    // anyway (e.g. a panic thrown while dropping the
                    // first payload) instead of taking down the fleet.
                    h.join().unwrap_or_else(|payload| {
                        Some(Err(ServeError::Panicked {
                            what: panic_message(payload),
                        }))
                    })
                })
                .collect()
        });
        let mut first_error: Option<ServeError> = None;
        for (i, outcome) in results.into_iter().enumerate() {
            match outcome {
                None => {} // poisoned before this call; skipped
                Some(Ok(responses)) => {
                    self.shards[i].last_error = None;
                    for r in responses {
                        let seq = Self::pop_seq(&mut self.order, r.id);
                        self.ready.push((seq, r));
                    }
                }
                Some(Err(e)) => {
                    // A panic that somehow escaped the in-thread
                    // containment still has to poison its shard.
                    if matches!(e, ServeError::Panicked { .. })
                        && self.shards[i].server.poisoned().is_none()
                    {
                        self.shards[i].server.poison(e.clone());
                    }
                    // Salvage whatever the failing shard completed
                    // before the error (take_ready never drives the
                    // machine, so this is safe even when poisoned).
                    for r in self.shards[i].server.take_ready() {
                        let seq = Self::pop_seq(&mut self.order, r.id);
                        self.ready.push((seq, r));
                    }
                    self.shards[i].last_error = Some(e.clone());
                    self.shards[i].fault_record = Some(e.clone());
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(self.take_ready()),
        }
    }

    /// The round driver: shards run concurrently in rounds of at most
    /// `quantum` supersteps each. Between rounds the `poll` hook is
    /// drained (cooperative cancellation) and — when `rebalance_cfg` is
    /// set (PC-affinity scheduling) — the scheduler applies the
    /// migration and stealing plans from [`crate::affinity`]. Error
    /// handling matches the least-loaded driver — a failing shard is
    /// poisoned if it panicked, its completed work is salvaged, it
    /// leaves this call's rotation, and the first error (by shard
    /// index) is returned after the healthy remainder drains.
    ///
    /// When a whole round runs zero supersteps and moves nothing, every
    /// runnable shard is deadline-blocked: the fleet clock advances to
    /// the earliest pending deadline (mirroring the single-server
    /// fast-forward). If no shard names a deadline either, the fleet is
    /// wedged (e.g. only errored shards still hold work) and the drive
    /// stops — the recorded per-shard errors say why.
    fn run_rounds(
        &mut self,
        quantum: u64,
        rebalance_cfg: Option<AffinityConfig>,
        fault_once: bool,
        poll: &mut dyn FnMut() -> Vec<u64>,
    ) -> Result<Vec<Response>> {
        let quantum = quantum.max(1);
        let cap = self.policy.max_batch().max(1);
        let mut first_error: Option<ServeError> = None;
        // Shards that errored during *this* call: out of the rotation
        // until the caller triages (respawn/reject), like the one-burst
        // driver's post-error behavior.
        let mut dead = vec![false; self.shards.len()];
        // `fault_once` gives burst-equivalent chaos: one counter per
        // (call, shard), checked on the shard's first round only, so a
        // deterministic plan sees the same per-attempt fault frequency
        // as the one-burst driver no matter how many quanta the drive
        // takes. Without it (PC-affinity) every round draws its own
        // counter, which the plan accounts for.
        let call_round = self.fault_round;
        if fault_once {
            self.fault_round += 1;
        }
        let mut fresh = vec![true; self.shards.len()];
        loop {
            for id in poll() {
                self.cancel(id);
            }
            let round = if fault_once {
                call_round
            } else {
                let r = self.fault_round;
                self.fault_round += 1;
                r
            };
            let nshards = self.shards.len() as u64;
            let fault = self.opts.fault;
            let results: Vec<RoundOutcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&dead)
                    .zip(fresh.iter_mut())
                    .enumerate()
                    .map(|(i, ((shard, &is_dead), fresh_i))| {
                        scope.spawn(move || {
                            if is_dead || shard.server.poisoned().is_some() {
                                return None;
                            }
                            let inject = !fault_once || std::mem::take(fresh_i);
                            let counter = round * nshards + i as u64;
                            if inject && fault.fires(FaultPoint::WorkerSlow, counter) {
                                std::thread::sleep(std::time::Duration::from_micros(
                                    fault.delay_micros(counter),
                                ));
                            }
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                if inject && fault.fires(FaultPoint::WorkerPanic, counter) {
                                    panic!(
                                        "injected fault at {} (counter {counter})",
                                        FaultPoint::WorkerPanic.name()
                                    );
                                }
                                shard.server.run_for(quantum, Some(&mut shard.trace))
                            }));
                            Some(match run {
                                Ok(outcome) => outcome,
                                Err(payload) => {
                                    let e = ServeError::Panicked {
                                        what: panic_message(payload),
                                    };
                                    shard.server.poison(e.clone());
                                    Err(e)
                                }
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|payload| {
                            Some(Err(ServeError::Panicked {
                                what: panic_message(payload),
                            }))
                        })
                    })
                    .collect()
            });
            let mut steps_total = 0u64;
            for (i, outcome) in results.into_iter().enumerate() {
                match outcome {
                    None => {}
                    Some(Ok((responses, steps))) => {
                        steps_total += steps;
                        self.shards[i].last_error = None;
                        for r in responses {
                            let seq = Self::pop_seq(&mut self.order, r.id);
                            self.ready.push((seq, r));
                        }
                    }
                    Some(Err(e)) => {
                        if matches!(e, ServeError::Panicked { .. })
                            && self.shards[i].server.poisoned().is_none()
                        {
                            self.shards[i].server.poison(e.clone());
                        }
                        for r in self.shards[i].server.take_ready() {
                            let seq = Self::pop_seq(&mut self.order, r.id);
                            self.ready.push((seq, r));
                        }
                        self.shards[i].last_error = Some(e.clone());
                        self.shards[i].fault_record = Some(e.clone());
                        dead[i] = true;
                        first_error.get_or_insert(e);
                    }
                }
            }
            let active: Vec<usize> = (0..self.shards.len())
                .filter(|&i| !dead[i] && !self.shards[i].poisoned())
                .collect();
            let work_left = active.iter().any(|&i| {
                self.shards[i].server.pending() > 0 || self.shards[i].server.in_flight() > 0
            });
            if !work_left {
                break;
            }
            let moved = match &rebalance_cfg {
                Some(cfg) => self.rebalance(cap, cfg, &dead),
                None => 0,
            };
            if steps_total == 0 && moved == 0 {
                let next = active
                    .iter()
                    .filter_map(|&i| self.shards[i].server.next_deadline())
                    .min();
                match next {
                    Some(t) => self.set_clock(t),
                    None => break,
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(self.take_ready()),
        }
    }

    /// One rebalance pass between quantum rounds: straggler migrations
    /// first, then work stealing, both planned against one consistent
    /// snapshot of the fleet. Returns how many lanes and requests
    /// moved. A migration whose eviction or injection fails is skipped
    /// (the plan raced a retirement), and a lane that cannot be
    /// injected is put back on its donor — rebalancing never loses
    /// work.
    fn rebalance(&mut self, cap: usize, cfg: &AffinityConfig, dead: &[bool]) -> usize {
        let views: Vec<ShardView> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardView {
                active: !dead[i] && !s.poisoned(),
                lanes: s
                    .server
                    .lane_pcs()
                    .into_iter()
                    .map(|(ticket, _, pc)| (ticket, pc))
                    .collect(),
                live: s.server.in_flight(),
                pending: s.server.pending(),
                steps: s.trace.supersteps(),
            })
            .collect();
        let mut moved = 0;
        // Straggler/consolidation migrations first, then queue steals,
        // then batch splits for shards still idle (the splits planner
        // no-ops whenever any queue is non-empty, so a thief never gets
        // both a steal and a split in one pass).
        let mut lane_moves = plan_migrations(&views, cap, cfg);
        lane_moves.extend(plan_splits(&views, cap, cfg));
        for m in lane_moves {
            let (donor, recipient) = Self::shard_pair(&mut self.shards, m.from, m.to);
            let migrants = match donor
                .server
                .evict_lanes(&[m.ticket], Some(&mut donor.trace))
            {
                Ok(migrants) => migrants,
                Err(_) => continue,
            };
            for migrant in migrants {
                match recipient
                    .server
                    .admit_migrant(migrant, Some(&mut recipient.trace))
                {
                    Ok(()) => moved += 1,
                    Err(bounce) => {
                        // Hand the lane back to its donor; the donor
                        // held it a moment ago, so re-injection cannot
                        // fail structurally. If it somehow does, record
                        // the fault rather than panic the fleet.
                        let (migrant, _) = *bounce;
                        if let Err(bounce) =
                            donor.server.admit_migrant(migrant, Some(&mut donor.trace))
                        {
                            let e = bounce.1;
                            donor.last_error = Some(e.clone());
                            donor.fault_record = Some(e);
                        }
                    }
                }
            }
        }
        for s in plan_steals(&views, cap, cfg) {
            let (donor, thief) = Self::shard_pair(&mut self.shards, s.from, s.to);
            let batch = donor.server.steal_queued(s.n);
            moved += batch.len();
            thief.server.enqueue_stolen(batch);
        }
        moved
    }

    /// Borrow two distinct shards mutably at once.
    fn shard_pair<'a>(
        shards: &'a mut [Shard<'p>],
        a: usize,
        b: usize,
    ) -> (&'a mut Shard<'p>, &'a mut Shard<'p>) {
        debug_assert_ne!(a, b);
        if a < b {
            let (left, right) = shards.split_at_mut(b);
            (&mut left[a], &mut right[0])
        } else {
            let (left, right) = shards.split_at_mut(a);
            (&mut right[0], &mut left[b])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_core::{lower, LoweringOptions, VmError};
    use autobatch_ir::build::fibonacci_program;
    use autobatch_tensor::Tensor;

    fn fib_request(id: u64, n: i64) -> Request {
        Request {
            id,
            inputs: vec![Tensor::from_i64(&[n], &[1]).unwrap()],
            seed: 1000 + id,
        }
    }

    fn sharded(
        policy: AdmissionPolicy,
        workers: usize,
        opts: ExecOptions,
        program: &Program,
    ) -> ShardedServer<'_> {
        ShardedServer::new(
            program,
            KernelRegistry::new(),
            opts,
            policy,
            workers,
            Backend::hybrid_cpu(),
        )
        .unwrap()
    }

    const NS: [i64; 10] = [14, 2, 9, 1, 12, 5, 16, 3, 10, 7];
    const FIB: [i64; 10] = [610, 2, 55, 1, 233, 8, 1597, 3, 89, 21];

    #[test]
    fn sharded_serving_is_correct_and_submission_ordered() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        for workers in [1, 2, 3, 4] {
            let policy = AdmissionPolicy::JoinAtEntry {
                max_batch: 3,
                min_utilization: 1.0,
            };
            let mut server = sharded(policy, workers, ExecOptions::default(), &pc);
            for (id, &n) in NS.iter().enumerate() {
                server.submit(fib_request(id as u64, n)).unwrap();
            }
            let done = server.run_until_idle().unwrap();
            // Submission order is preserved without any caller-side sort,
            // whatever the per-shard completion interleaving was.
            let ids: Vec<u64> = done.iter().map(|r| r.id).collect();
            assert_eq!(ids, (0..NS.len() as u64).collect::<Vec<_>>());
            let got: Vec<i64> = done
                .iter()
                .map(|r| r.outputs[0].as_i64().unwrap()[0])
                .collect();
            assert_eq!(got, FIB, "wrong results at {workers} workers");
            assert_eq!(server.completed(), NS.len() as u64);
        }
    }

    #[test]
    fn sharded_results_are_bit_identical_to_single_server() {
        // Placement cannot perturb results: lanes draw under the request
        // seed, not the shard or lane index.
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut single =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for (id, &n) in NS.iter().enumerate() {
            single.submit(fib_request(id as u64, n)).unwrap();
        }
        let mut reference = single.run_until_idle(None).unwrap();
        reference.sort_by_key(|r| r.id);
        for workers in [2, 4] {
            let mut server = sharded(policy, workers, ExecOptions::default(), &pc);
            for (id, &n) in NS.iter().enumerate() {
                server.submit(fib_request(id as u64, n)).unwrap();
            }
            let done = server.run_until_idle().unwrap();
            for (a, b) in reference.iter().zip(&done) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.outputs, b.outputs, "sharding perturbed request {}", a.id);
            }
        }
    }

    #[test]
    fn router_balances_queue_depth_across_shards() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 4,
            min_utilization: 1.0,
        };
        let mut server = sharded(policy, 4, ExecOptions::default(), &pc);
        for id in 0..8u64 {
            server.submit(fib_request(id, 5)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(server.shard_load(i), 2, "shard {i} unbalanced");
        }
        assert_eq!(server.pending(), 8);
    }

    #[test]
    fn one_shards_poison_does_not_lose_other_shards_work() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let opts = ExecOptions {
            stack_depth: 16,
            ..ExecOptions::default()
        };
        // Serial per-shard batches make per-shard completion order
        // deterministic: shard 0 serves ids 0 then 2 (fib(2), then the
        // overflowing fib(40)); shard 1 serves ids 1 and 3.
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        let mut server = sharded(policy, 2, opts, &pc);
        for (id, n) in [(0u64, 2i64), (1, 5), (2, 40), (3, 7)] {
            server.submit(fib_request(id, n)).unwrap();
        }
        let err = server.run_until_idle().unwrap_err();
        assert!(
            matches!(err, ServeError::Vm(VmError::StackOverflow { .. })),
            "{err:?}"
        );
        assert_eq!(server.poisoned_shards(), vec![0]);
        // Every completed response survives — including shard 0's own
        // pre-error completion — in submission order.
        let ready = server.take_ready();
        let ids: Vec<u64> = ready.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        let got: Vec<i64> = ready
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, vec![2, 8, 21], "fib(2), fib(5), fib(7)");
        // New work routes around the poisoned shard and keeps serving;
        // the dead shard's error is not re-raised. (The poisoned shard
        // still carries its never-retired member as load — routing skips
        // it by health, not by load.)
        server.submit(fib_request(4, 6)).unwrap();
        let done = server.run_until_idle().unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outputs[0].as_i64().unwrap(), &[13]);
        assert_eq!(
            server.shard_errors().len(),
            1,
            "shard 0's error stays on record"
        );
    }

    #[test]
    fn drain_poisoned_reroutes_stranded_requests() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let opts = ExecOptions {
            stack_depth: 16,
            ..ExecOptions::default()
        };
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        let mut server = sharded(policy, 2, opts, &pc);
        // Shard 0 receives the poisonous fib(40) first, then fib(9) and
        // fib(3) queue behind it; shard 1 gets fib(5) and fib(7).
        for (id, n) in [(0u64, 40i64), (1, 5), (2, 9), (3, 7), (4, 3)] {
            server.submit(fib_request(id, n)).unwrap();
        }
        let err = server.run_until_idle().unwrap_err();
        assert!(matches!(err, ServeError::Vm(VmError::StackOverflow { .. })));
        assert_eq!(server.poisoned_shards(), vec![0]);
        // fib(9) and fib(3) are stranded behind the dead machine; move
        // them to the healthy shard and finish serving.
        let moved = server.drain_poisoned().unwrap();
        assert_eq!(moved, 2);
        // Re-routing is not a new submission: the lifetime counter must
        // not double-count the moved requests.
        assert_eq!(server.submitted(), 5);
        let done = server.run_until_idle().unwrap();
        let ids: Vec<u64> = done.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![1, 2, 3, 4],
            "original submission order survives re-routing"
        );
        let got: Vec<i64> = done
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, vec![8, 55, 21, 3]);
    }

    #[test]
    fn aggregated_trace_sums_membership_and_overlaps_time() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 4,
            min_utilization: 1.0,
        };
        let mut server = sharded(policy, 2, ExecOptions::default(), &pc);
        for (id, &n) in NS.iter().enumerate() {
            server.submit(fib_request(id as u64, n)).unwrap();
        }
        server.run_until_idle().unwrap();
        let agg = server.aggregated_trace();
        assert_eq!(agg.members_admitted(), NS.len() as u64);
        assert_eq!(agg.members_retired(), NS.len() as u64);
        let per_shard_time = (0..2)
            .map(|i| server.shard_trace(i).sim_time())
            .collect::<Vec<_>>();
        assert_eq!(
            agg.sim_time(),
            per_shard_time.iter().cloned().fold(0.0, f64::max),
            "fleet wall-clock is the slowest shard"
        );
        assert_eq!(
            agg.supersteps(),
            (0..2)
                .map(|i| server.shard_trace(i).supersteps())
                .sum::<u64>()
        );
    }

    #[test]
    fn plan_is_parameterized_by_the_backend_profile() {
        // Host-control-bound profiles shard all the way down.
        let plan = ShardPlan::for_backend(&Backend::hybrid_cpu(), 16, 4);
        assert_eq!(plan.workers, 4);
        assert_eq!(plan.shard_batch, 4);
        let plan = ShardPlan::for_backend(&Backend::xla_cpu(), 16, 8);
        assert_eq!(plan.workers, 8);
        assert_eq!(plan.shard_batch, 2);
        // A launch-bound profile (dispatch dwarfs host control) keeps
        // shards wide instead: width floor = launch / superstep = 8.
        let mut launch_bound = Backend::hybrid_cpu();
        launch_bound.launch_overhead = 80e-3;
        launch_bound.superstep_overhead = 10e-3;
        let plan = ShardPlan::for_backend(&launch_bound, 16, 8);
        assert_eq!(plan.workers, 2);
        assert_eq!(plan.shard_batch, 8);
        // No host control loop at all (native scalar): one shard.
        let plan = ShardPlan::for_backend(&Backend::native_cpu(), 16, 8);
        assert_eq!(plan.workers, 1);
        // Invariants on degenerate inputs.
        let plan = ShardPlan::for_backend(&Backend::hybrid_cpu(), 0, 0);
        assert_eq!(plan.workers, 1);
        assert!(plan.shard_batch >= 1);
        // Capacity always covers the expected concurrency.
        for expected in [1usize, 3, 7, 16, 33] {
            for max_workers in [1usize, 2, 5, 8] {
                let p = ShardPlan::for_backend(&Backend::hybrid_cpu(), expected, max_workers);
                assert!(p.workers <= max_workers);
                assert!(p.workers * p.shard_batch >= expected);
            }
        }
    }

    #[test]
    fn with_plan_builds_a_working_server() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let plan = ShardPlan::for_backend(&Backend::hybrid_cpu(), 8, 4);
        let mut server = ShardedServer::with_plan(
            &pc,
            KernelRegistry::new(),
            ExecOptions::default(),
            &plan,
            Backend::hybrid_cpu(),
        )
        .unwrap();
        assert_eq!(server.shards(), 4);
        for (id, &n) in NS.iter().enumerate() {
            server.submit(fib_request(id as u64, n)).unwrap();
        }
        let done = server.run_until_idle().unwrap();
        let got: Vec<i64> = done
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, FIB);
    }

    #[test]
    fn fleet_queue_budget_sheds_load_only_when_every_shard_is_full() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::Deadline {
            max_batch: 2,
            max_wait: 1_000,
        };
        let mut server = sharded(policy, 2, ExecOptions::default(), &pc);
        server.set_queue_budget(Some(2));
        // 2 shards × budget 2 = 4 queued requests fit…
        for id in 0..4u64 {
            server.submit(fib_request(id, 5)).unwrap();
        }
        assert_eq!(server.pending(), 4);
        // …the fifth is shed with a typed rejection and no sequence
        // number is consumed.
        let err = server.submit(fib_request(4, 5)).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                depth: 2,
                budget: 2
            }
        );
        assert_eq!(server.submitted(), 4);
        assert_eq!(server.peak_pending(), 2);
        // Clock forwarding reaches every shard: the partial batches
        // launch at their deadline and everything completes.
        server.set_clock(1_000);
        let done = server.run_until_idle().unwrap();
        assert_eq!(done.len(), 4);
        assert_eq!(
            done.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn deadline_policy_is_bit_identical_across_sharding() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let deadline = AdmissionPolicy::Deadline {
            max_batch: 3,
            max_wait: 40,
        };
        let mut single =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), deadline).unwrap();
        for (id, &n) in NS.iter().enumerate() {
            single.submit(fib_request(id as u64, n)).unwrap();
        }
        let mut reference = single.run_until_idle(None).unwrap();
        reference.sort_by_key(|r| r.id);
        for workers in [2, 3] {
            let mut server = sharded(deadline, workers, ExecOptions::default(), &pc);
            for (id, &n) in NS.iter().enumerate() {
                server.submit(fib_request(id as u64, n)).unwrap();
            }
            let done = server.run_until_idle().unwrap();
            for (a, b) in reference.iter().zip(&done) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.outputs, b.outputs,
                    "sharded deadline admission perturbed request {}",
                    a.id
                );
            }
        }
    }

    #[test]
    fn zero_workers_rejected() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let err = ShardedServer::new(
            &pc,
            KernelRegistry::new(),
            ExecOptions::default(),
            AdmissionPolicy::DrainAndRefill { max_batch: 1 },
            0,
            Backend::hybrid_cpu(),
        );
        assert!(matches!(err, Err(ServeError::BadPolicy(_))));
    }

    #[test]
    fn fleet_contains_runaways_and_reports_governance_health() {
        use autobatch_chaos::FaultPlan;
        // Every lane runs away (the chaos Runaway site rewinds the pc
        // to entry each superstep); only budgets can end this traffic.
        let plan = FaultPlan {
            seed: 11,
            runaway: FaultPlan::ALWAYS,
            ..FaultPlan::none()
        };
        let opts = ExecOptions {
            fault: plan,
            ..ExecOptions::default()
        };
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 0.0,
        };
        let mut server = sharded(policy, 4, opts, &pc);
        server.set_budget(crate::RequestBudget {
            max_supersteps: Some(8),
            ..crate::RequestBudget::unlimited()
        });
        for id in 0..4u64 {
            server.submit(fib_request(id, 20)).unwrap();
        }
        // `run_until_idle` returns: nothing waits on the runaways.
        let done = server.run_until_idle().unwrap();
        assert!(done.is_empty());
        let failed = server.take_failed();
        assert_eq!(failed.len(), 4);
        for (_, e) in &failed {
            assert!(
                matches!(e, ServeError::BudgetExceeded { spent: 9, limit: 8 }),
                "expected a typed budget verdict, got {e:?}"
            );
        }
        assert_eq!(server.evictions(), 4);
        let health = server.health();
        assert!(health.iter().all(|h| h.healthy), "no shard may wedge");
        assert_eq!(health.iter().map(|h| h.evictions).sum::<u64>(), 4);
        assert_eq!(server.pending() + server.in_flight(), 0);
    }

    #[test]
    fn quarantine_trips_probes_and_recovers() {
        use autobatch_chaos::{FaultPlan, FaultPoint};
        let plan = FaultPlan {
            seed: 3,
            runaway: FaultPlan::ALWAYS / 2,
            ..FaultPlan::none()
        };
        // Whether a request runs away is keyed by its RNG seed: pick
        // two doomed seeds and one clean one from the plan itself.
        let mut doomed = (0u64..).filter(|&s| plan.fires(FaultPoint::Runaway, s));
        let clean = (0u64..)
            .find(|&s| !plan.fires(FaultPoint::Runaway, s))
            .unwrap();
        let request = |id: u64, seed: u64| Request {
            id,
            inputs: vec![Tensor::from_i64(&[10], &[1]).unwrap()],
            seed,
        };
        let opts = ExecOptions {
            fault: plan,
            ..ExecOptions::default()
        };
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 2 };
        let fleet = sharded(policy, 2, opts, &pc);
        let mut sup = crate::Supervisor::new(
            fleet,
            crate::SupervisorConfig {
                quarantine: crate::QuarantineConfig {
                    trip_threshold: 2,
                    decay_rounds: 64,
                    cooldown_rounds: 3,
                },
                ..crate::SupervisorConfig::default()
            },
        );
        sup.set_budget(crate::RequestBudget {
            max_supersteps: Some(2048),
            ..crate::RequestBudget::unlimited()
        });

        // Two budget blowups inside the window trip the breaker.
        sup.submit(request(0, doomed.next().unwrap())).unwrap();
        sup.submit(request(1, doomed.next().unwrap())).unwrap();
        let outcomes = sup.run_until_quiescent();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(
                matches!(
                    o,
                    crate::Outcome::Failed {
                        error: ServeError::BudgetExceeded { .. },
                        ..
                    }
                ),
                "expected budget blowups, got {o:?}"
            );
        }
        assert!(
            matches!(
                sup.quarantine(),
                crate::QuarantineStatus::Open { blowups: 2, .. }
            ),
            "breaker must be open, got {:?}",
            sup.quarantine()
        );

        // Open: fast-rejects, each advancing the cooldown clock, until
        // the half-open probe slot admits one request.
        let mut refusals = 0u64;
        loop {
            match sup.submit(request(100 + refusals, clean)) {
                Err(ServeError::Quarantined { .. }) => refusals += 1,
                Ok(()) => break,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
            assert!(refusals <= 3, "cooldown must elapse within cooldown_rounds");
        }
        assert!(matches!(
            sup.quarantine(),
            crate::QuarantineStatus::HalfOpen { probing: true }
        ));
        // A second request cannot share the probe slot.
        assert!(matches!(
            sup.submit(request(999, clean)),
            Err(ServeError::Quarantined { .. })
        ));

        // The clean probe terminates normally: breaker closes, record
        // resets, and traffic flows again.
        let outcomes = sup.run_until_quiescent();
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, crate::Outcome::Done(_))),
            "the probe must complete, got {outcomes:?}"
        );
        assert!(matches!(
            sup.quarantine(),
            crate::QuarantineStatus::Closed { recent_blowups: 0 }
        ));
        sup.submit(request(200, clean)).unwrap();
        let outcomes = sup.run_until_quiescent();
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0], crate::Outcome::Done(_)));
    }

    #[test]
    fn blown_probe_reopens_the_breaker() {
        use autobatch_chaos::{FaultPlan, FaultPoint};
        let plan = FaultPlan {
            seed: 5,
            runaway: FaultPlan::ALWAYS / 2,
            ..FaultPlan::none()
        };
        let mut doomed = (0u64..).filter(|&s| plan.fires(FaultPoint::Runaway, s));
        let request = |id: u64, seed: u64| Request {
            id,
            inputs: vec![Tensor::from_i64(&[10], &[1]).unwrap()],
            seed,
        };
        let opts = ExecOptions {
            fault: plan,
            ..ExecOptions::default()
        };
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let fleet = sharded(
            AdmissionPolicy::DrainAndRefill { max_batch: 2 },
            2,
            opts,
            &pc,
        );
        let mut sup = crate::Supervisor::new(
            fleet,
            crate::SupervisorConfig {
                quarantine: crate::QuarantineConfig {
                    trip_threshold: 1,
                    decay_rounds: 64,
                    cooldown_rounds: 2,
                },
                ..crate::SupervisorConfig::default()
            },
        );
        sup.set_budget(crate::RequestBudget {
            max_supersteps: Some(8),
            ..crate::RequestBudget::unlimited()
        });
        sup.submit(request(0, doomed.next().unwrap())).unwrap();
        sup.run_until_quiescent();
        assert!(matches!(
            sup.quarantine(),
            crate::QuarantineStatus::Open { .. }
        ));
        let mut refusals = 0u64;
        let probe_seed = doomed.next().unwrap();
        loop {
            match sup.submit(request(100 + refusals, probe_seed)) {
                Err(ServeError::Quarantined { .. }) => refusals += 1,
                Ok(()) => break,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
            assert!(refusals <= 2, "cooldown must elapse within cooldown_rounds");
        }
        // The probe itself runs away: straight back to quarantine.
        sup.run_until_quiescent();
        assert!(
            matches!(sup.quarantine(), crate::QuarantineStatus::Open { .. }),
            "a blown probe must re-open the breaker, got {:?}",
            sup.quarantine()
        );
    }
}
