//! Serving driver for the batched NUTS samplers in `autobatch-nuts`.
//!
//! Each request is one Markov chain: an initial position plus a
//! per-request seed (the RNG member key its lane draws under). Chains
//! join the in-flight batch under the server's [`AdmissionPolicy`], and
//! because NUTS threads its RNG counter through the program as an
//! ordinary stacked variable, a chain's trajectory is bit-identical
//! whether it runs alone or joins a busy batch mid-superstep.

use autobatch_accel::Trace;
use autobatch_nuts::BatchNuts;
use autobatch_tensor::Tensor;

use crate::{AdmissionPolicy, BatchServer, Request, Response, Result, ServeError};

/// A completed chain request.
#[derive(Debug, Clone)]
pub struct ChainResponse {
    /// The request id.
    pub id: u64,
    /// Final position, `[d]`.
    pub position: Tensor,
    /// Final RNG counter (for exact continuation via
    /// [`BatchNuts::run_pc_with`]).
    pub counter: i64,
    /// Superstep at which the chain was admitted.
    pub admitted_at: u64,
    /// Superstep at which the chain retired.
    pub retired_at: u64,
}

/// A [`BatchServer`] specialized to a compiled NUTS sampler.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use autobatch_models::StdNormal;
/// use autobatch_nuts::{BatchNuts, NutsConfig};
/// use autobatch_serve::{AdmissionPolicy, NutsServer};
/// use autobatch_tensor::{DType, Tensor};
///
/// let cfg = NutsConfig { n_trajectories: 2, ..NutsConfig::default() };
/// let nuts = BatchNuts::new(Arc::new(StdNormal::new(2)), cfg)?;
/// let policy = AdmissionPolicy::JoinAtEntry { max_batch: 4, min_utilization: 1.0 };
/// let mut server = NutsServer::new(&nuts, policy)?;
/// server.submit(0, &Tensor::zeros(DType::F64, &[2]), 7)?;
/// let done = server.run_until_idle(None)?;
/// assert_eq!(done[0].position.shape(), &[2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NutsServer<'n> {
    nuts: &'n BatchNuts,
    server: BatchServer<'n>,
}

impl<'n> NutsServer<'n> {
    /// Create a chain server over a compiled sampler.
    ///
    /// # Errors
    ///
    /// As [`BatchServer::new`].
    pub fn new(nuts: &'n BatchNuts, policy: AdmissionPolicy) -> Result<NutsServer<'n>> {
        let server = BatchServer::new(
            nuts.lowered(),
            nuts.registry().clone(),
            nuts.exec_options(),
            policy,
        )?;
        Ok(NutsServer { nuts, server })
    }

    /// The generic server underneath (queue/throughput statistics).
    pub fn server(&self) -> &BatchServer<'n> {
        &self.server
    }

    /// Enqueue one chain: initial position `q0` (`[d]` or `[1, d]`) and a
    /// per-request seed.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on a shape mismatch.
    pub fn submit(&mut self, id: u64, q0: &Tensor, seed: u64) -> Result<()> {
        let inputs = self
            .nuts
            .request_inputs(q0)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        self.server.submit(Request { id, inputs, seed })
    }

    /// Serve every queued chain to completion (in completion order).
    ///
    /// # Errors
    ///
    /// As [`BatchServer::run_until_idle`].
    pub fn run_until_idle(&mut self, trace: Option<&mut Trace>) -> Result<Vec<ChainResponse>> {
        let responses = self.server.run_until_idle(trace)?;
        responses.into_iter().map(|r| self.convert(r)).collect()
    }

    fn convert(&self, r: Response) -> Result<ChainResponse> {
        let dim = self.nuts.dim();
        let position = r.outputs[0]
            .reshape(&[dim])
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let counter = r.outputs[1]
            .as_i64()
            .map_err(|e| ServeError::BadRequest(e.to_string()))?[0];
        Ok(ChainResponse {
            id: r.id,
            position,
            counter,
            admitted_at: r.admitted_at,
            retired_at: r.retired_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_models::{CorrelatedGaussian, NealsFunnel, StdNormal};
    use autobatch_nuts::NutsConfig;
    use autobatch_tensor::CounterRng;
    use std::sync::Arc;

    fn cfg() -> NutsConfig {
        NutsConfig {
            step_size: 0.3,
            n_trajectories: 3,
            max_depth: 5,
            leapfrog_steps: 2,
            seed: 11,
        }
    }

    #[test]
    fn chain_admitted_mid_flight_matches_chain_served_alone() {
        // The acceptance property, on a sampler whose every step draws
        // randomness: a request admitted into an in-flight batch is
        // bit-identical to the same request served alone with the same
        // seed.
        let nuts = BatchNuts::new(Arc::new(NealsFunnel::new(3)), cfg()).unwrap();
        let rng = CounterRng::new(5);
        let q_late = rng.normal_batch(&[100], &[3]);
        let q_late = q_late.row(0).unwrap();

        // Alone.
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 8,
            min_utilization: 1.0,
        };
        let mut alone = NutsServer::new(&nuts, policy).unwrap();
        alone.submit(0, &q_late, 42).unwrap();
        let solo = alone.run_until_idle(None).unwrap();

        // Mid-flight: six other chains are already running when the same
        // request arrives.
        let mut busy = NutsServer::new(&nuts, policy).unwrap();
        for i in 0..6u64 {
            let q = rng.normal_batch(&[i as i64], &[3]).row(0).unwrap();
            busy.submit(1 + i, &q, 1000 + i).unwrap();
        }
        busy.submit(0, &q_late, 42).unwrap();
        let all = busy.run_until_idle(None).unwrap();
        let joined = all.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(
            joined.position, solo[0].position,
            "admission perturbed draws"
        );
        assert_eq!(joined.counter, solo[0].counter);
    }

    #[test]
    fn served_chains_match_one_shot_batch_when_keys_align() {
        // Serving with seeds 0..z equals the classic one-shot run, whose
        // lanes use identity member keys.
        let nuts = BatchNuts::new(Arc::new(StdNormal::new(2)), cfg()).unwrap();
        let rng = CounterRng::new(9);
        let q0 = rng.normal_batch(&[0, 1, 2, 3], &[2]);
        let oneshot = nuts.run_pc(&q0, None).unwrap();

        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 4 };
        let mut server = NutsServer::new(&nuts, policy).unwrap();
        for b in 0..4u64 {
            server.submit(b, &q0.row(b as usize).unwrap(), b).unwrap();
        }
        let mut done = server.run_until_idle(None).unwrap();
        done.sort_by_key(|r| r.id);
        for (b, r) in done.iter().enumerate() {
            assert_eq!(
                r.position,
                oneshot.row(b).unwrap(),
                "chain {b} diverged from the one-shot batch"
            );
        }
    }

    #[test]
    fn throughput_statistics_are_reported() {
        use autobatch_accel::Backend;
        let nuts = BatchNuts::new(Arc::new(CorrelatedGaussian::new(3, 0.5)), cfg()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut server = NutsServer::new(&nuts, policy).unwrap();
        let rng = CounterRng::new(3);
        for i in 0..5u64 {
            let q = rng.normal_batch(&[i as i64], &[3]).row(0).unwrap();
            server.submit(i, &q, i).unwrap();
        }
        let mut tr = Trace::new(Backend::xla_cpu());
        let done = server.run_until_idle(Some(&mut tr)).unwrap();
        assert_eq!(done.len(), 5);
        assert_eq!(tr.members_admitted(), 5);
        assert_eq!(tr.members_retired(), 5);
        assert!(tr.peak_members() <= 2);
        assert!(tr.utilization("grad") > 0.0);
        assert_eq!(server.server().completed(), 5);
    }

    #[test]
    fn bad_chain_shape_rejected() {
        let nuts = BatchNuts::new(Arc::new(StdNormal::new(3)), cfg()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        let mut server = NutsServer::new(&nuts, policy).unwrap();
        let bad = Tensor::zeros(autobatch_tensor::DType::F64, &[4]);
        assert!(matches!(
            server.submit(0, &bad, 0),
            Err(ServeError::BadRequest(_))
        ));
    }
}
