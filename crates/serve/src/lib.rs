//! # autobatch-serve
//!
//! A serving layer over the program-counter autobatching VM: requests
//! arrive one at a time, are merged into an **in-flight** batched
//! execution under an [`AdmissionPolicy`], and leave with per-request
//! results — the "sustained multi-request traffic" mode the ROADMAP's
//! north star asks for, in the spirit of on-the-fly batchers like
//! ACRoBat (Fegade et al., 2023).
//!
//! The two policies contrast the classic serving trade-off:
//!
//! - [`AdmissionPolicy::JoinAtEntry`] — pending requests join the live
//!   batch at the program entry block whenever capacity is free and
//!   utilization has dropped below a threshold. Stragglers no longer
//!   serialize the queue: fresh requests ride along in the same
//!   supersteps, and the paper's pc batching lets them share block
//!   launches with members deep in recursion.
//! - [`AdmissionPolicy::DrainAndRefill`] — the baseline: wait until the
//!   machine is empty, then admit a full batch. Equivalent to running
//!   sequential fixed-size batches.
//!
//! Correctness does not depend on the policy: every request's draws come
//! from the counter-based RNG keyed by `(seed, member_key, counter)`,
//! so results are bit-identical across admission orders and batch
//! compositions (asserted by this crate's tests and the workspace
//! property suite).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;

use autobatch_accel::Trace;
use autobatch_core::{ExecOptions, KernelRegistry, PcMachine, VmError};
use autobatch_ir::pcab::Program;
use autobatch_tensor::Tensor;

pub mod nuts_driver;
pub mod shard;

pub use nuts_driver::{ChainResponse, NutsServer};
pub use shard::{ShardPlan, ShardedServer};

/// Errors from the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The underlying VM failed.
    Vm(VmError),
    /// A request does not fit the served program.
    BadRequest(String),
    /// The policy configuration is unusable (e.g. zero capacity).
    BadPolicy(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Vm(e) => write!(f, "vm error: {e}"),
            ServeError::BadRequest(what) => write!(f, "bad request: {what}"),
            ServeError::BadPolicy(what) => write!(f, "bad policy: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for ServeError {
    fn from(e: VmError) -> ServeError {
        ServeError::Vm(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// When pending requests are merged into the in-flight batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Join the live batch at the entry block whenever a lane is free and
    /// batch utilization has dropped below `min_utilization` (fraction of
    /// live members active in the last superstep; `1.0` admits whenever
    /// there is capacity). `max_batch` bounds the live member count.
    JoinAtEntry {
        /// Maximum live members.
        max_batch: usize,
        /// Utilization threshold below which pending requests join.
        min_utilization: f64,
    },
    /// Admit only into an empty machine, `max_batch` requests at a time —
    /// the sequential fixed-batch baseline.
    DrainAndRefill {
        /// Batch size per refill.
        max_batch: usize,
    },
}

impl AdmissionPolicy {
    fn max_batch(&self) -> usize {
        match *self {
            AdmissionPolicy::JoinAtEntry { max_batch, .. }
            | AdmissionPolicy::DrainAndRefill { max_batch } => max_batch,
        }
    }
}

/// One queued request: per-request inputs (each `[1, elem..]`) and a
/// per-request RNG seed.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen request id, echoed in the [`Response`].
    pub id: u64,
    /// One `[1, elem..]` tensor per program input.
    pub inputs: Vec<Tensor>,
    /// Per-request RNG seed: the member key its lane draws under. Equal
    /// seeds give equal draw streams, whatever the batch around them.
    pub seed: u64,
}

/// A completed request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// One `[1, elem..]` tensor per program output.
    pub outputs: Vec<Tensor>,
    /// Superstep at which the request was admitted.
    pub admitted_at: u64,
    /// Superstep at which the request retired.
    pub retired_at: u64,
}

/// A batch server owning a request queue and an in-flight [`PcMachine`].
///
/// # Examples
///
/// ```
/// use autobatch_core::{lower, KernelRegistry, LoweringOptions, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_serve::{AdmissionPolicy, BatchServer, Request};
/// use autobatch_tensor::Tensor;
///
/// let (program, _) = lower(&fibonacci_program(), LoweringOptions::default())?;
/// let policy = AdmissionPolicy::JoinAtEntry { max_batch: 4, min_utilization: 1.0 };
/// let mut server = BatchServer::new(&program, KernelRegistry::new(), ExecOptions::default(), policy)?;
/// for (id, n) in [(0u64, 6i64), (1, 9), (2, 3)] {
///     server.submit(Request { id, inputs: vec![Tensor::from_i64(&[n], &[1])?], seed: id })?;
/// }
/// let mut done = server.run_until_idle(None)?;
/// done.sort_by_key(|r| r.id);
/// assert_eq!(done[1].outputs[0].as_i64()?, &[55]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchServer<'p> {
    machine: PcMachine<'p>,
    policy: AdmissionPolicy,
    queue: VecDeque<Request>,
    /// ticket → (request id, admission superstep).
    in_flight: Vec<(u64, u64, u64)>,
    /// Completed responses not yet handed to the caller. Buffered on the
    /// server so work finished before a mid-run error is not dropped with
    /// it — the next successful [`BatchServer::run_until_idle`] returns it.
    ready: Vec<Response>,
    /// Set when a superstep failed mid-execution. Per-member state may be
    /// half-mutated at that point (some lanes executed the block's ops
    /// before the error surfaced), so driving the machine further would
    /// corrupt innocent members; every later run refuses with this error.
    poisoned: Option<ServeError>,
    /// The machine's cumulative superstep budget, kept to report
    /// [`VmError::StepLimit`] when exhaustion blocks pending admissions.
    step_limit: u64,
    submitted: u64,
    completed: u64,
}

impl<'p> BatchServer<'p> {
    /// Create a server for a lowered program.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadPolicy`] if the policy's batch capacity
    /// is zero.
    pub fn new(
        program: &'p Program,
        registry: KernelRegistry,
        opts: ExecOptions,
        policy: AdmissionPolicy,
    ) -> Result<BatchServer<'p>> {
        if policy.max_batch() == 0 {
            return Err(ServeError::BadPolicy("max_batch must be positive".into()));
        }
        Ok(BatchServer {
            step_limit: opts.max_supersteps,
            machine: PcMachine::new(program, registry, opts),
            policy,
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            ready: Vec::new(),
            poisoned: None,
            submitted: 0,
            completed: 0,
        })
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Requests waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently inside the in-flight batch.
    pub fn in_flight(&self) -> usize {
        self.machine.live()
    }

    /// Requests submitted over the server's lifetime.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Requests completed over the server's lifetime.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Supersteps executed by the in-flight machine.
    pub fn supersteps(&self) -> u64 {
        self.machine.supersteps()
    }

    /// Enqueue a request. Validation is shallow (arity only); shape
    /// errors surface at admission.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on input arity mismatch.
    pub fn submit(&mut self, request: Request) -> Result<()> {
        let want = self.machine.program().inputs.len();
        if request.inputs.len() != want {
            return Err(ServeError::BadRequest(format!(
                "program takes {} inputs, request {} has {}",
                want,
                request.id,
                request.inputs.len()
            )));
        }
        self.queue.push_back(request);
        self.submitted += 1;
        Ok(())
    }

    /// Admit pending requests according to the policy.
    fn admit_pending(&mut self, trace: &mut Option<&mut Trace>) -> Result<()> {
        let cap = self.policy.max_batch();
        let free = cap.saturating_sub(self.machine.live());
        if self.queue.is_empty() || free == 0 {
            return Ok(());
        }
        // A machine whose cumulative step budget is exhausted can only
        // error: admitting into it would strand the requests (no longer
        // pending, never retirable). Leave them in the queue instead.
        if self.machine.step_budget_remaining() == 0 {
            return Ok(());
        }
        // The refill decision is made once, against the state *before*
        // any admission: an empty machine always refills to capacity
        // (both policies must guarantee progress — and this is exactly
        // what makes DrainAndRefill a fixed-batch baseline rather than a
        // serial one).
        let admit = match self.policy {
            _ if self.machine.live() == 0 => true,
            AdmissionPolicy::JoinAtEntry {
                min_utilization, ..
            } => {
                // `min_utilization >= 1.0` means "admit whenever there is
                // capacity": full lockstep (util == 1.0) must not block
                // admission under that setting.
                let util = self.machine.last_active() as f64 / self.machine.live() as f64;
                min_utilization >= 1.0 || util < min_utilization
            }
            AdmissionPolicy::DrainAndRefill { .. } => false,
        };
        if !admit {
            return Ok(());
        }
        let batch: Vec<Request> = (0..free.min(self.queue.len()))
            .map(|_| self.queue.pop_front().expect("checked non-empty"))
            .collect();
        let admitted = {
            let reqs: Vec<(&[Tensor], u64)> = batch
                .iter()
                .map(|r| (r.inputs.as_slice(), r.seed))
                .collect();
            self.machine.admit_batch(&reqs, trace.as_deref_mut())
        };
        let tickets = match admitted {
            Ok(tickets) => tickets,
            Err(_) => {
                // Admission validates before touching the machine, so
                // in-flight members are intact — but the batch error does
                // not say *which* request is bad. Retry one at a time:
                // innocent requests are admitted, and the first offender
                // goes back to the queue head (followed by the requests
                // behind it), where [`BatchServer::reject`] can drop it.
                // Nothing is lost silently.
                let mut offender: Option<(Request, ServeError)> = None;
                let mut rest = Vec::new();
                for r in batch {
                    if offender.is_some() {
                        rest.push(r);
                    } else {
                        match self.machine.admit(&r.inputs, r.seed, trace.as_deref_mut()) {
                            Ok(ticket) => {
                                self.in_flight
                                    .push((ticket, r.id, self.machine.supersteps()))
                            }
                            Err(e) => offender = Some((r, e.into())),
                        }
                    }
                }
                return match offender {
                    Some((r, e)) => {
                        for r in rest.into_iter().rev() {
                            self.queue.push_front(r);
                        }
                        self.queue.push_front(r);
                        Err(e)
                    }
                    // Defensive: every request fit individually after
                    // all — everything admitted, nothing to report.
                    None => Ok(()),
                };
            }
        };
        for (ticket, req) in tickets.into_iter().zip(&batch) {
            self.in_flight
                .push((ticket, req.id, self.machine.supersteps()));
        }
        Ok(())
    }

    /// Retire finished members into the [`BatchServer::ready`] buffer.
    fn collect_retired(&mut self, trace: &mut Option<&mut Trace>) -> Result<()> {
        for r in self.machine.retire_finished(trace.as_deref_mut())? {
            let pos = self
                .in_flight
                .iter()
                .position(|(t, _, _)| *t == r.ticket)
                .expect("retired member was admitted by this server");
            let (_, id, admitted_at) = self.in_flight.swap_remove(pos);
            self.completed += 1;
            self.ready.push(Response {
                id,
                outputs: r.outputs,
                admitted_at,
                retired_at: self.machine.supersteps(),
            });
        }
        Ok(())
    }

    /// Drop and return the request at the head of the queue — the one a
    /// failed admission names. Lets a caller unblock the server after
    /// [`BatchServer::run_until_idle`] returns an admission error without
    /// losing the requests queued behind it.
    pub fn reject(&mut self) -> Option<Request> {
        self.queue.pop_front()
    }

    /// Take the responses completed so far without driving the machine —
    /// the way to salvage finished work after an unrecoverable execution
    /// error has [poisoned](BatchServer::poisoned) the server.
    pub fn take_ready(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.ready)
    }

    /// The execution error that poisoned this server, if any. A poisoned
    /// server refuses to run (the failed superstep left per-member state
    /// half-mutated); drain [`BatchServer::take_ready`] and rebuild.
    pub fn poisoned(&self) -> Option<&ServeError> {
        self.poisoned.as_ref()
    }

    /// Drive the server until the queue and the machine are both empty,
    /// returning every completed request (in completion order) —
    /// including any that completed before a previous call errored out.
    ///
    /// # Errors
    ///
    /// Three failure classes, with different recovery stories:
    ///
    /// - **Admission errors** ([`ServeError::Vm`] with
    ///   [`VmError::BadInputs`]) are recoverable: in-flight members are
    ///   intact, innocent requests popped alongside the offender are
    ///   admitted anyway, and the offender itself is back at the queue
    ///   head, where [`BatchServer::reject`] can drop it. Responses
    ///   already completed stay buffered for the next successful call.
    ///   Nothing is silently lost. ("Offender" means mismatched against
    ///   the batch's established input spec: programs are
    ///   shape-polymorphic, so the server's *first* admission fixes each
    ///   input's element shape and dtype for its lifetime — submitters
    ///   must agree on request shapes up front, as a malformed first
    ///   request would define the spec the rest are judged by.)
    /// - **The step limit** ([`VmError::StepLimit`], cumulative over the
    ///   machine's lifetime) fires *before* a block executes, so state
    ///   stays consistent: the server is not poisoned, and later calls
    ///   still retire finished members — they just cannot step further.
    ///   Queued requests stay pending (never admitted into the exhausted
    ///   machine), where [`BatchServer::reject`] can still drain them.
    /// - **Execution errors** (stack overflow/underflow) surface
    ///   mid-superstep, after some lanes already ran the block's ops —
    ///   the machine's state is half-mutated and re-driving it would
    ///   corrupt innocent members. The server is *poisoned*: this and
    ///   every later call return the error. Salvage completed work with
    ///   [`BatchServer::take_ready`] and rebuild the server.
    pub fn run_until_idle(&mut self, mut trace: Option<&mut Trace>) -> Result<Vec<Response>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        loop {
            self.collect_retired(&mut trace)?;
            self.admit_pending(&mut trace)?;
            let stepped = match self.machine.step(trace.as_deref_mut()) {
                Ok(stepped) => stepped,
                Err(e) => {
                    let e = ServeError::from(e);
                    // The step-limit check fires *before* the block
                    // executes, so the machine is still consistent: don't
                    // poison — later calls can still retire finished
                    // members (they just cannot step any further).
                    if !matches!(e, ServeError::Vm(VmError::StepLimit { .. })) {
                        self.poisoned = Some(e.clone());
                    }
                    return Err(e);
                }
            };
            if !stepped {
                self.collect_retired(&mut trace)?;
                if self.queue.is_empty() && self.machine.live() == 0 {
                    return Ok(std::mem::take(&mut self.ready));
                }
                // Nothing stepped and requests remain: the only way
                // admit_pending can refuse an empty machine is an
                // exhausted step budget. Surface the exhaustion rather
                // than spinning on a machine that can never run again.
                if self.machine.step_budget_remaining() == 0 {
                    return Err(ServeError::Vm(VmError::StepLimit {
                        limit: self.step_limit,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_core::{lower, LoweringOptions};
    use autobatch_ir::build::fibonacci_program;

    fn fib_requests(ns: &[i64]) -> Vec<Request> {
        ns.iter()
            .enumerate()
            .map(|(i, &n)| Request {
                id: i as u64,
                inputs: vec![Tensor::from_i64(&[n], &[1]).unwrap()],
                seed: 1000 + i as u64,
            })
            .collect()
    }

    fn serve(ns: &[i64], policy: AdmissionPolicy) -> (Vec<Response>, u64) {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(ns) {
            server.submit(r).unwrap();
        }
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        (out, server.supersteps())
    }

    const NS: [i64; 10] = [14, 2, 9, 1, 12, 5, 16, 3, 10, 7];
    const FIB: [i64; 10] = [610, 2, 55, 1, 233, 8, 1597, 3, 89, 21];

    #[test]
    fn join_at_entry_serves_all_requests_correctly() {
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 3,
            min_utilization: 1.0,
        };
        let (out, _) = serve(&NS, policy);
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, FIB);
        // Some request genuinely joined mid-flight.
        assert!(
            out.iter().any(|r| r.admitted_at > 0),
            "no mid-flight admission happened"
        );
    }

    #[test]
    fn drain_and_refill_serves_all_requests_correctly() {
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 3 };
        let (out, _) = serve(&NS, policy);
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, FIB);
        // Refill batches never overlap: every admission happens when the
        // machine is empty, i.e. at a superstep where all prior
        // responses already retired.
        for r in &out {
            assert!(r.retired_at >= r.admitted_at);
        }
    }

    #[test]
    fn policies_and_admission_orders_agree_bitwise() {
        let policies = [
            AdmissionPolicy::JoinAtEntry {
                max_batch: 2,
                min_utilization: 1.0,
            },
            AdmissionPolicy::JoinAtEntry {
                max_batch: 8,
                min_utilization: 0.5,
            },
            AdmissionPolicy::DrainAndRefill { max_batch: 4 },
            AdmissionPolicy::DrainAndRefill { max_batch: 1 },
        ];
        let (reference, _) = serve(&NS, policies[0]);
        for p in &policies[1..] {
            let (out, _) = serve(&NS, *p);
            for (a, b) in reference.iter().zip(&out) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.outputs, b.outputs, "results differ under {p:?}");
            }
        }
        // Reversed submission order: same per-request results.
        let rev_ns: Vec<i64> = NS.iter().rev().copied().collect();
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let mut server = BatchServer::new(
            &pc,
            KernelRegistry::new(),
            ExecOptions::default(),
            policies[0],
        )
        .unwrap();
        for (i, &n) in rev_ns.iter().enumerate() {
            let orig = NS.len() - 1 - i;
            server
                .submit(Request {
                    id: orig as u64,
                    inputs: vec![Tensor::from_i64(&[n], &[1]).unwrap()],
                    seed: 1000 + orig as u64,
                })
                .unwrap();
        }
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        for (a, b) in reference.iter().zip(&out) {
            assert_eq!(a.outputs, b.outputs, "admission order perturbed results");
        }
    }

    #[test]
    fn drain_and_refill_fills_whole_batches() {
        // Regression: the refill decision is made against the *pre*-
        // admission state, so an empty machine refills all the way to
        // max_batch — not one request (a serial baseline in disguise).
        use autobatch_accel::{Backend, Trace};
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 3 };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(&[9, 5, 11, 7, 3, 8, 6]) {
            server.submit(r).unwrap();
        }
        let mut tr = Trace::new(Backend::hybrid_cpu());
        let out = server.run_until_idle(Some(&mut tr)).unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(tr.peak_members(), 3, "refill must reach max_batch");
    }

    #[test]
    fn join_at_entry_admits_into_lockstep_batch_with_free_lane() {
        // Regression: `min_utilization: 1.0` means "admit whenever there
        // is capacity". Members running in lockstep hold utilization at
        // exactly 1.0, which must not block a pending request from
        // taking a freed lane.
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 3,
            min_utilization: 1.0,
        };
        // Request 0 retires early; 1 and 2 are identical, so the
        // survivors run in perfect lockstep while 3 waits.
        let (out, _) = serve(&[2, 9, 9, 9], policy);
        let late = &out[3];
        let lockstep_end = out[1].retired_at.min(out[2].retired_at);
        assert!(
            late.admitted_at < lockstep_end,
            "request 3 (admitted at {}) should have joined the lockstep \
             batch before it drained (at {})",
            late.admitted_at,
            lockstep_end
        );
    }

    #[test]
    fn dynamic_admission_beats_sequential_fixed_batches() {
        // The serving claim: on a divergent workload, join-at-entry keeps
        // lanes busy while drain-and-refill serializes behind stragglers.
        use autobatch_accel::Backend;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        // Divergent depths: each refill batch contains one straggler.
        let ns: Vec<i64> = (0..24)
            .map(|i| if i % 4 == 0 { 17 } else { 2 + (i % 3) })
            .collect();
        let mut times = Vec::new();
        for policy in [
            AdmissionPolicy::JoinAtEntry {
                max_batch: 4,
                min_utilization: 1.0,
            },
            AdmissionPolicy::DrainAndRefill { max_batch: 4 },
        ] {
            let mut server =
                BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy)
                    .unwrap();
            for r in fib_requests(&ns) {
                server.submit(r).unwrap();
            }
            let mut tr = Trace::new(Backend::hybrid_cpu());
            let out = server.run_until_idle(Some(&mut tr)).unwrap();
            assert_eq!(out.len(), ns.len());
            times.push(tr.sim_time());
        }
        assert!(
            times[0] < times[1],
            "dynamic admission ({}) should beat drain-and-refill ({})",
            times[0],
            times[1]
        );
    }

    #[test]
    fn failed_admission_requeues_requests_and_loses_nothing() {
        // A bad-shaped request errors at admission; the requests popped
        // alongside it go back into the queue, in-flight members stay
        // intact, and responses completed before the error are returned
        // by the next successful run — nothing is silently lost.
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        // Two long requests fill the machine; a short one retires first
        // and frees a lane for the poisoned request.
        for r in fib_requests(&[12, 2]) {
            server.submit(r).unwrap();
        }
        server
            .submit(Request {
                id: 2,
                inputs: vec![Tensor::from_i64(&[1, 2], &[1, 2]).unwrap()],
                seed: 2,
            })
            .unwrap();
        for mut r in fib_requests(&[5]) {
            r.id = 3;
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None);
        assert!(matches!(err, Err(ServeError::Vm(_))), "got {err:?}");
        // The poisoned request is back at the queue head with the good
        // one behind it; the long member is still in flight.
        assert_eq!(server.pending(), 2);
        assert_eq!(server.in_flight(), 1);
        // Drop the poisoned request and finish: every good request's
        // response arrives, including the one completed before the error.
        let rejected = server.reject().unwrap();
        assert_eq!(rejected.id, 2);
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, vec![233, 2, 8], "fib(12), fib(2), fib(5)");
    }

    #[test]
    fn failed_batch_admission_admits_innocents_and_heads_the_offender() {
        // When the offender is popped *behind* innocent requests, the
        // innocents must be admitted (not re-queued behind a recovery
        // that would drop them) and the offender must end up at the
        // queue head, where `reject` removes exactly the bad request.
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(&[9]) {
            server.submit(r).unwrap();
        }
        server
            .submit(Request {
                id: 1,
                inputs: vec![Tensor::from_i64(&[1, 2], &[1, 2]).unwrap()],
                seed: 1,
            })
            .unwrap();
        let err = server.run_until_idle(None);
        assert!(matches!(err, Err(ServeError::Vm(_))), "got {err:?}");
        assert_eq!(server.in_flight(), 1, "the good request was admitted");
        assert_eq!(server.pending(), 1, "only the offender is queued");
        assert_eq!(server.reject().unwrap().id, 1, "offender at the head");
        let out = server.run_until_idle(None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[0].outputs[0].as_i64().unwrap(), &[55]);
    }

    #[test]
    fn step_limit_does_not_poison_and_finished_work_remains_retirable() {
        // The cumulative step limit fires before a block executes, so the
        // machine is consistent: the server must not poison itself, and a
        // member that finished before the limit is still retired/returned.
        use autobatch_core::VmError;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let opts = ExecOptions {
            max_supersteps: 30,
            ..ExecOptions::default()
        };
        // max_batch 2 leaves a free lane after the short member retires,
        // so the post-limit admission gate (not the capacity check) is
        // what must keep later submissions out of the dead machine.
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 2 };
        let mut server = BatchServer::new(&pc, KernelRegistry::new(), opts, policy).unwrap();
        for r in fib_requests(&[2, 15]) {
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None).unwrap_err();
        assert!(
            matches!(err, ServeError::Vm(VmError::StepLimit { .. })),
            "{err:?}"
        );
        assert!(server.poisoned().is_none(), "step limit must not poison");
        // Requests submitted after exhaustion must stay pending — never
        // admitted into a machine that can only error — so they remain
        // reachable through `reject`.
        for mut r in fib_requests(&[4]) {
            r.id = 2;
            server.submit(r).unwrap();
        }
        let in_flight_before = server.in_flight();
        assert_eq!(in_flight_before, 1, "long member still in flight");
        // A later call re-raises the limit, but the completed response
        // survives for salvage and the queue is untouched.
        assert_eq!(server.run_until_idle(None).unwrap_err(), err);
        assert_eq!(
            server.in_flight(),
            in_flight_before,
            "no stranded admission"
        );
        assert_eq!(server.reject().map(|r| r.id), Some(2));
        let ready = server.take_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].outputs[0].as_i64().unwrap(), &[2]);
    }

    #[test]
    fn exhaustion_with_pending_requests_errors_instead_of_spinning() {
        // Regression: if the step budget runs out exactly as the machine
        // drains while requests are still queued, run_until_idle must
        // surface StepLimit — not busy-loop on a machine that can never
        // step again with admissions refused.
        use autobatch_core::VmError;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        // Measure the supersteps one fib(2) request needs end to end.
        let mut probe =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(&[2]) {
            probe.submit(r).unwrap();
        }
        probe.run_until_idle(None).unwrap();
        let steps = probe.supersteps();
        // Budget for exactly one request, two submitted.
        let opts = ExecOptions {
            max_supersteps: steps,
            ..ExecOptions::default()
        };
        let mut server = BatchServer::new(&pc, KernelRegistry::new(), opts, policy).unwrap();
        for r in fib_requests(&[2, 2]) {
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None).unwrap_err();
        assert!(
            matches!(err, ServeError::Vm(VmError::StepLimit { .. })),
            "{err:?}"
        );
        assert!(server.poisoned().is_none());
        // The completed request is salvageable, the other stays queued.
        assert_eq!(server.take_ready().len(), 1);
        assert_eq!(server.pending(), 1);
    }

    #[test]
    fn execution_error_poisons_server_but_completed_work_is_salvageable() {
        // An execution error (here: stack overflow) surfaces mid-
        // superstep, with per-member state half-mutated — re-driving the
        // machine would corrupt innocent members. The server must refuse
        // further runs, while work completed before the failure stays
        // retrievable.
        use autobatch_core::VmError;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let opts = ExecOptions {
            stack_depth: 16,
            ..ExecOptions::default()
        };
        // Serial batches make the order deterministic: request 0 fully
        // completes (and is buffered) before request 1 is even admitted.
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        let mut server = BatchServer::new(&pc, KernelRegistry::new(), opts, policy).unwrap();
        for r in fib_requests(&[2, 40]) {
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None).unwrap_err();
        assert!(
            matches!(err, ServeError::Vm(VmError::StackOverflow { .. })),
            "{err:?}"
        );
        // Poisoned: every later run refuses with the same error.
        assert_eq!(server.run_until_idle(None).unwrap_err(), err);
        assert!(server.poisoned().is_some());
        // The request that completed before the failure is salvageable.
        let ready = server.take_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].id, 0);
        assert_eq!(ready[0].outputs[0].as_i64().unwrap(), &[2]);
    }

    #[test]
    fn bad_requests_and_policies_rejected() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        assert!(matches!(
            BatchServer::new(
                &pc,
                KernelRegistry::new(),
                ExecOptions::default(),
                AdmissionPolicy::DrainAndRefill { max_batch: 0 },
            ),
            Err(ServeError::BadPolicy(_))
        ));
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 2 };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        let err = server.submit(Request {
            id: 0,
            inputs: vec![],
            seed: 0,
        });
        assert!(matches!(err, Err(ServeError::BadRequest(_))));
    }
}
