//! # autobatch-serve
//!
//! A serving layer over the program-counter autobatching VM: requests
//! arrive one at a time, are merged into an **in-flight** batched
//! execution under an [`AdmissionPolicy`], and leave with per-request
//! results — the "sustained multi-request traffic" mode the ROADMAP's
//! north star asks for, in the spirit of on-the-fly batchers like
//! ACRoBat (Fegade et al., 2023).
//!
//! The three policies contrast the classic serving trade-offs:
//!
//! - [`AdmissionPolicy::JoinAtEntry`] — pending requests join the live
//!   batch at the program entry block whenever a lane is free *and*
//!   utilization has dropped below a threshold (thresholds `>= 1.0`
//!   disable the utilization test, so a free lane alone admits).
//!   Stragglers no longer serialize the queue: fresh requests ride
//!   along in the same supersteps, and the paper's pc batching lets
//!   them share block launches with members deep in recursion.
//! - [`AdmissionPolicy::DrainAndRefill`] — the baseline: wait until the
//!   machine is empty, then admit a full batch. Equivalent to running
//!   sequential fixed-size batches.
//! - [`AdmissionPolicy::Deadline`] — OpenVINO-style auto-batch
//!   collection: pending requests are held back until they can fill
//!   every free lane, **or** until the oldest of them has waited
//!   `max_wait` ticks of the server's [clock](BatchServer::set_clock) —
//!   so batches stay full under load while tail latency stays bounded
//!   under light load.
//!
//! Time is explicit: the server owns a monotonic virtual clock in
//! abstract ticks, advanced by the caller ([`BatchServer::set_clock`]).
//! Benchmarks drive it deterministically from the simulated cost model;
//! the TCP ingress layer (`autobatch-ingress`) drives it from the real
//! clock at the connection boundary. Queue-wait observability
//! ([`Response::queued_ticks`], [`BatchServer::peak_pending`]) and
//! backpressure ([`BatchServer::set_queue_budget`], the typed
//! [`ServeError::Overloaded`] rejection) are measured in those ticks.
//!
//! Correctness does not depend on the policy: every request's draws come
//! from the counter-based RNG keyed by `(seed, member_key, counter)`,
//! so results are bit-identical across admission orders and batch
//! compositions (asserted by this crate's tests and the workspace
//! property suite).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, VecDeque};

use autobatch_accel::Trace;
use autobatch_chaos::{FaultPlan, FaultPoint};
use autobatch_core::{ExecOptions, KernelRegistry, LaneState, PcMachine, VmError};
use autobatch_ir::analysis::{
    analyze_pcab, infer_pcab_signature, AbsDType, PcabReport, TensorSpec,
};
use autobatch_ir::pcab::Program;
use autobatch_ir::IrError;
use autobatch_tensor::{DType, Tensor};

pub mod affinity;
pub mod nuts_driver;
pub mod shard;
pub mod supervisor;

pub use affinity::{AffinityConfig, SchedulingPolicy};
pub use nuts_driver::{ChainResponse, NutsServer};
pub use shard::{ShardHealth, ShardPlan, ShardedServer};
pub use supervisor::{Outcome, QuarantineConfig, QuarantineStatus, Supervisor, SupervisorConfig};

/// Errors from the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The underlying VM failed.
    Vm(VmError),
    /// A request does not fit the served program.
    BadRequest(String),
    /// The policy configuration is unusable (e.g. zero capacity).
    BadPolicy(String),
    /// The program failed static verification at server construction:
    /// no machine state is ever created for a program the abstract
    /// interpreter rejects.
    InvalidProgram(IrError),
    /// A request's inputs violate the program's statically inferred
    /// signature (wrong dtype or element shape). Detected at
    /// submission, before the request touches any machine state.
    InvalidRequest(IrError),
    /// Load shedding: the queue is at its configured budget and the
    /// request was **not** enqueued. The typed alternative to letting
    /// the queue grow without bound — callers can retry later or fail
    /// fast upstream.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured queue budget that was hit.
        budget: usize,
    },
    /// A worker thread panicked. The panic was caught at the shard
    /// boundary and converted into this typed poison — one shard dies,
    /// not the fleet — so completed work stays salvageable and a
    /// [`Supervisor`] can respawn the shard.
    Panicked {
        /// The panic message, as far as it could be recovered.
        what: String,
    },
    /// A supervised request failed on every attempt its retry budget
    /// allowed; `last` is the error that killed the final attempt. The
    /// typed terminal answer a [`Supervisor`] gives up with.
    RetriesExhausted {
        /// The request id.
        id: u64,
        /// Attempts consumed beyond the first try.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<ServeError>,
    },
    /// The request's lane spent more supersteps than its
    /// [`RequestBudget::max_supersteps`] allows and was evicted at a
    /// superstep boundary. Terminal: retrying a program that blew its
    /// superstep budget would blow it again (the lane's draws are
    /// deterministic), so a supervisor answers with this instead of
    /// burning the retry budget.
    BudgetExceeded {
        /// Supersteps the lane had been charged when evicted.
        spent: u64,
        /// The configured per-request superstep ceiling.
        limit: u64,
    },
    /// The request outlived its [`RequestBudget::deadline_ticks`] on the
    /// server's virtual clock (queue wait plus in-flight residency) and
    /// was evicted at a superstep boundary. Terminal.
    DeadlineExceeded {
        /// Ticks the request had been alive (queued + in flight).
        elapsed: u64,
        /// The configured per-request deadline, in ticks.
        deadline: u64,
    },
    /// The request's lane exceeded its [`RequestBudget::max_lane_bytes`]
    /// peak resident footprint and was evicted at a superstep boundary.
    /// Terminal.
    MemoryExceeded {
        /// Peak resident bytes attributed to the lane when evicted.
        bytes: u64,
        /// The configured per-lane byte ceiling.
        limit: u64,
    },
    /// The request was cancelled by the caller
    /// ([`BatchServer::cancel`]) — client disconnect or an explicit
    /// cancel frame — and its lane (or queue slot) was reclaimed.
    /// Terminal; never retried.
    Cancelled,
    /// Fast rejection at admission: the served program has repeatedly
    /// blown request budgets and its quarantine circuit breaker is
    /// open (see [`QuarantineConfig`]). The request was never enqueued.
    Quarantined {
        /// Budget blowups inside the decay window when the breaker
        /// tripped.
        blowups: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Vm(e) => write!(f, "vm error: {e}"),
            ServeError::BadRequest(what) => write!(f, "bad request: {what}"),
            ServeError::BadPolicy(what) => write!(f, "bad policy: {what}"),
            ServeError::InvalidProgram(e) => {
                write!(f, "program failed static verification: {e}")
            }
            ServeError::InvalidRequest(e) => {
                write!(f, "request violates the program signature: {e}")
            }
            ServeError::Overloaded { depth, budget } => {
                write!(f, "overloaded: queue depth {depth} at budget {budget}")
            }
            ServeError::Panicked { what } => {
                write!(f, "worker thread panicked: {what}")
            }
            ServeError::RetriesExhausted { id, attempts, last } => {
                write!(
                    f,
                    "request {id} exhausted its retry budget after {attempts} \
                     retries; last error: {last}"
                )
            }
            ServeError::BudgetExceeded { spent, limit } => {
                write!(
                    f,
                    "superstep budget exceeded: lane spent {spent} supersteps \
                     against a limit of {limit}"
                )
            }
            ServeError::DeadlineExceeded { elapsed, deadline } => {
                write!(
                    f,
                    "deadline exceeded: request alive {elapsed} ticks against \
                     a deadline of {deadline}"
                )
            }
            ServeError::MemoryExceeded { bytes, limit } => {
                write!(
                    f,
                    "memory budget exceeded: lane peaked at {bytes} resident \
                     bytes against a limit of {limit}"
                )
            }
            ServeError::Cancelled => write!(f, "cancelled by the caller"),
            ServeError::Quarantined { blowups } => {
                write!(
                    f,
                    "program quarantined after {blowups} budget blowups; \
                     fast-rejecting until the breaker half-opens"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Vm(e) => Some(e),
            ServeError::InvalidProgram(e) | ServeError::InvalidRequest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for ServeError {
    fn from(e: VmError) -> ServeError {
        ServeError::Vm(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// When pending requests are merged into the in-flight batch.
///
/// # Validation contract
///
/// Parameters are validated **at server construction**
/// ([`AdmissionPolicy::validate`], called by [`BatchServer::new`] and
/// everything built on it), never silently patched at admission time:
///
/// - `max_batch` must be positive — a zero-capacity server could never
///   admit anything;
/// - `min_utilization` must be finite and non-negative. `NaN` makes
///   *both* arms of the `util < min_utilization` comparison false, which
///   would leave a non-empty queue waiting on a busy machine forever;
///   negative values can never be undercut by a real utilization, which
///   silently degrades `JoinAtEntry` into drain-and-refill. Values
///   `>= 1.0` are allowed and meaningful: they disable the utilization
///   test, so pending requests are admitted whenever a lane is free.
///
/// Invalid parameters are a typed [`ServeError::BadPolicy`], so
/// misconfiguration fails loudly at startup instead of deadlocking or
/// quietly changing the scheduling discipline under traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Join the live batch at the entry block whenever a lane is free and
    /// batch utilization (fraction of live members active in the last
    /// superstep) has dropped below `min_utilization`. Thresholds
    /// `>= 1.0` disable the utilization test entirely: a free lane alone
    /// admits, even out of a perfect-lockstep batch. `max_batch` bounds
    /// the live member count.
    JoinAtEntry {
        /// Maximum live members.
        max_batch: usize,
        /// Utilization threshold below which pending requests join.
        /// Must be finite and `>= 0.0`; see the validation contract.
        min_utilization: f64,
    },
    /// Admit only into an empty machine, `max_batch` requests at a time —
    /// the sequential fixed-batch baseline.
    DrainAndRefill {
        /// Batch size per refill.
        max_batch: usize,
    },
    /// Deadline-driven auto-batch collection: hold pending requests back
    /// until they can fill **every** free lane, or until the oldest of
    /// them has waited `max_wait` ticks of the server's virtual clock
    /// ([`BatchServer::set_clock`]) — whichever comes first. Batches
    /// stay full under load; under light load a partially filled batch
    /// launches as soon as the head-of-line deadline expires, bounding
    /// each request's queue wait to `max_wait` plus at most one
    /// superstep.
    Deadline {
        /// Maximum live members.
        max_batch: usize,
        /// Longest a queued request may wait (in clock ticks) before a
        /// partial batch is admitted anyway.
        max_wait: u64,
    },
}

impl AdmissionPolicy {
    fn max_batch(&self) -> usize {
        match *self {
            AdmissionPolicy::JoinAtEntry { max_batch, .. }
            | AdmissionPolicy::DrainAndRefill { max_batch }
            | AdmissionPolicy::Deadline { max_batch, .. } => max_batch,
        }
    }

    /// Check the policy's parameters against the [validation
    /// contract](AdmissionPolicy#validation-contract).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadPolicy`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch() == 0 {
            return Err(ServeError::BadPolicy("max_batch must be positive".into()));
        }
        if let AdmissionPolicy::JoinAtEntry {
            min_utilization, ..
        } = *self
        {
            if !min_utilization.is_finite() || min_utilization < 0.0 {
                return Err(ServeError::BadPolicy(format!(
                    "min_utilization must be finite and non-negative, got \
                     {min_utilization} (NaN never compares below any \
                     utilization, so a non-empty queue would wait on a busy \
                     machine forever; negative thresholds silently degrade \
                     join-at-entry into drain-and-refill)"
                )));
            }
        }
        Ok(())
    }
}

/// Per-request resource ceilings, enforced at every superstep boundary
/// of the serving loop ([`BatchServer::set_budget`]).
///
/// Each live lane is charged one superstep per superstep it stays
/// running (admission starts the meter at zero; the charge travels with
/// the lane through migration, so moving shards cannot reset it), its
/// age in virtual-clock ticks is tracked from submission, and its peak
/// resident bytes are derived from the machine's buffer shapes. A lane
/// over any ceiling is **evicted mid-flight** through the same
/// compaction path straggler migration uses — always at a superstep
/// edge, never mid-fused-region (see [`PcMachine::extract_lanes`]) —
/// and answered with the matching typed terminal error
/// ([`ServeError::BudgetExceeded`] / [`ServeError::DeadlineExceeded`] /
/// [`ServeError::MemoryExceeded`]) while its batchmates keep running
/// bit-identically.
///
/// `None` fields are unenforced; the default budget is fully unlimited,
/// so production paths can thread a `RequestBudget` unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestBudget {
    /// Most supersteps a lane may stay running. A lane is evicted when
    /// its spend **exceeds** this, i.e. at the `max_supersteps + 1`-th
    /// charged superstep — the "within `max_supersteps + 1` supersteps
    /// of admission" containment contract.
    pub max_supersteps: Option<u64>,
    /// Longest a request may stay alive, in ticks of the server's
    /// virtual clock ([`BatchServer::set_clock`]): queue wait plus
    /// in-flight residency. Enforcement happens at superstep
    /// boundaries, so it fires only while the machine is being driven.
    pub deadline_ticks: Option<u64>,
    /// Peak resident bytes a single lane may reach (registers, stack
    /// tops, and occupied stack frames attributed to the lane).
    pub max_lane_bytes: Option<u64>,
}

impl RequestBudget {
    /// The fully unenforced budget (every ceiling `None`).
    pub const fn unlimited() -> Self {
        RequestBudget {
            max_supersteps: None,
            deadline_ticks: None,
            max_lane_bytes: None,
        }
    }

    /// True if any ceiling is set.
    pub fn is_limited(&self) -> bool {
        self.max_supersteps.is_some()
            || self.deadline_ticks.is_some()
            || self.max_lane_bytes.is_some()
    }
}

/// One queued request: per-request inputs (each `[1, elem..]`) and a
/// per-request RNG seed.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen request id, echoed in the [`Response`].
    pub id: u64,
    /// One `[1, elem..]` tensor per program input.
    pub inputs: Vec<Tensor>,
    /// Per-request RNG seed: the member key its lane draws under. Equal
    /// seeds give equal draw streams, whatever the batch around them.
    pub seed: u64,
}

/// A completed request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// One `[1, elem..]` tensor per program output.
    pub outputs: Vec<Tensor>,
    /// Superstep at which the request was admitted.
    pub admitted_at: u64,
    /// Superstep at which the request retired.
    pub retired_at: u64,
    /// Clock ticks the request spent queued before admission (admission
    /// clock minus submission clock, under the caller-driven clock of
    /// [`BatchServer::set_clock`]). The queue-latency observable the
    /// deadline policy bounds.
    pub queued_ticks: u64,
}

/// A lane evicted mid-flight from one [`BatchServer`] for re-admission
/// on another — the unit of cross-shard straggler migration. Produced by
/// [`BatchServer::evict_lanes`], consumed by
/// [`BatchServer::admit_migrant`].
#[derive(Debug)]
pub struct Migrant {
    /// The request id the lane is computing.
    pub id: u64,
    /// The lane's complete portable execution state.
    pub lane: LaneState,
    /// Superstep at which the request was originally admitted (on its
    /// first machine; carried into the final [`Response`]).
    pub admitted_at: u64,
    /// Queue-wait ticks from the original admission.
    pub queued_ticks: u64,
    /// Virtual-clock reading at the original admission, carried so a
    /// per-request deadline keeps counting across migrations.
    pub admitted_clock: u64,
}

/// Bookkeeping for one lane admitted into the in-flight machine.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// The machine ticket identifying the lane.
    ticket: u64,
    /// The request id the lane is computing.
    id: u64,
    /// Superstep at admission (for [`Response::admitted_at`]).
    admitted_at: u64,
    /// Queue-wait ticks accrued before admission.
    queued_ticks: u64,
    /// Virtual-clock reading at admission; with `queued_ticks` this
    /// gives the request's total age for deadline enforcement.
    admitted_clock: u64,
}

/// A batch server owning a request queue and an in-flight [`PcMachine`].
///
/// # Examples
///
/// ```
/// use autobatch_core::{lower, KernelRegistry, LoweringOptions, ExecOptions};
/// use autobatch_ir::build::fibonacci_program;
/// use autobatch_serve::{AdmissionPolicy, BatchServer, Request};
/// use autobatch_tensor::Tensor;
///
/// let (program, _) = lower(&fibonacci_program(), LoweringOptions::default())?;
/// let policy = AdmissionPolicy::JoinAtEntry { max_batch: 4, min_utilization: 1.0 };
/// let mut server = BatchServer::new(&program, KernelRegistry::new(), ExecOptions::default(), policy)?;
/// for (id, n) in [(0u64, 6i64), (1, 9), (2, 3)] {
///     server.submit(Request { id, inputs: vec![Tensor::from_i64(&[n], &[1])?], seed: id })?;
/// }
/// let mut done = server.run_until_idle(None)?;
/// done.sort_by_key(|r| r.id);
/// assert_eq!(done[1].outputs[0].as_i64()?, &[55]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BatchServer<'p> {
    machine: PcMachine<'p>,
    policy: AdmissionPolicy,
    /// Pending requests, each stamped with the clock at submission.
    queue: VecDeque<(Request, u64)>,
    /// Monotonic virtual clock in abstract ticks, advanced by the
    /// caller. Deadline admission and queue-latency accounting read it.
    clock: u64,
    /// Load-shedding budget: submissions beyond this queue depth are
    /// rejected with [`ServeError::Overloaded`]. `None` = unbounded.
    queue_budget: Option<usize>,
    /// Deepest the queue has ever been.
    peak_pending: usize,
    /// Bookkeeping for every lane admitted and not yet retired.
    in_flight: Vec<InFlight>,
    /// Per-request resource ceilings enforced at superstep boundaries.
    budget: RequestBudget,
    /// Ids whose lanes should be evicted at the next superstep boundary
    /// (cooperative cancellation).
    cancel_requested: std::collections::BTreeSet<u64>,
    /// Requests that reached a typed terminal failure inside the drive
    /// loop (budget eviction, cancellation) — the failure-side analogue
    /// of [`BatchServer::ready`], drained by
    /// [`BatchServer::take_failed`].
    failed: Vec<(u64, ServeError)>,
    /// Lanes evicted by governance over the server's lifetime.
    evictions: u64,
    /// Completed responses not yet handed to the caller. Buffered on the
    /// server so work finished before a mid-run error is not dropped with
    /// it — the next successful [`BatchServer::run_until_idle`] returns it.
    ready: Vec<Response>,
    /// Set when a superstep failed mid-execution. Per-member state may be
    /// half-mutated at that point (some lanes executed the block's ops
    /// before the error surfaced), so driving the machine further would
    /// corrupt innocent members; every later run refuses with this error.
    poisoned: Option<ServeError>,
    /// The machine's cumulative superstep budget, kept to report
    /// [`VmError::StepLimit`] when exhaustion blocks pending admissions.
    step_limit: u64,
    /// The chaos schedule in force (a copy of `opts.fault`; inert by
    /// default). Admission faults roll against `fault_rolls`.
    fault: FaultPlan,
    /// Submission attempts rolled against the admission fault site.
    /// Counts every [`BatchServer::submit`] call, so a retried request
    /// re-rolls instead of deterministically re-failing.
    fault_rolls: u64,
    submitted: u64,
    completed: u64,
    /// The static verification report computed once at construction.
    report: PcabReport,
    /// Per-input-spec memo of concrete signature inference: `None` =
    /// accepted, `Some(e)` = rejected with `e`. Traffic repeats a
    /// handful of specs, so each distinct one is inferred once.
    sig_cache: BTreeMap<Vec<TensorSpec>, Option<IrError>>,
}

impl<'p> BatchServer<'p> {
    /// Create a server for a lowered program.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadPolicy`] if the policy violates the
    /// [validation contract](AdmissionPolicy#validation-contract)
    /// (zero capacity, or a NaN/negative/non-finite utilization
    /// threshold), or [`ServeError::InvalidProgram`] if the program
    /// fails static verification — in that case no [`PcMachine`] is
    /// ever constructed.
    pub fn new(
        program: &'p Program,
        registry: KernelRegistry,
        opts: ExecOptions,
        policy: AdmissionPolicy,
    ) -> Result<BatchServer<'p>> {
        policy.validate()?;
        let report = analyze_pcab(program);
        if let Some(e) = report.diagnostics.first() {
            return Err(ServeError::InvalidProgram(e.clone()));
        }
        Ok(BatchServer {
            report,
            sig_cache: BTreeMap::new(),
            step_limit: opts.max_supersteps,
            fault: opts.fault,
            fault_rolls: 0,
            machine: PcMachine::new(program, registry, opts),
            policy,
            queue: VecDeque::new(),
            clock: 0,
            queue_budget: None,
            peak_pending: 0,
            in_flight: Vec::new(),
            budget: RequestBudget::unlimited(),
            cancel_requested: std::collections::BTreeSet::new(),
            failed: Vec::new(),
            evictions: 0,
            ready: Vec::new(),
            poisoned: None,
            submitted: 0,
            completed: 0,
        })
    }

    /// Advance the server's virtual clock to `now` (monotonic: earlier
    /// values are ignored). Submissions are stamped with the clock, the
    /// [`AdmissionPolicy::Deadline`] policy compares waits against it,
    /// and [`Response::queued_ticks`] is measured in it. Benchmarks
    /// drive it from the deterministic simulated cost model; a real
    /// front end drives it from wall-clock elapsed time.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = self.clock.max(now);
    }

    /// The current virtual clock, in ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Bound the queue depth: once `pending()` reaches the budget,
    /// further submissions are rejected with [`ServeError::Overloaded`]
    /// instead of growing the queue without bound. `None` (the default)
    /// disables shedding.
    pub fn set_queue_budget(&mut self, budget: Option<usize>) {
        self.queue_budget = budget;
    }

    /// The configured load-shedding budget, if any.
    pub fn queue_budget(&self) -> Option<usize> {
        self.queue_budget
    }

    /// Set the per-request resource ceilings enforced at every superstep
    /// boundary (see [`RequestBudget`]). The default is unlimited.
    pub fn set_budget(&mut self, budget: RequestBudget) {
        self.budget = budget;
    }

    /// The per-request resource ceilings in force.
    pub fn budget(&self) -> RequestBudget {
        self.budget
    }

    /// Request cooperative cancellation of a request. A still-queued
    /// request is removed immediately; an in-flight request's lane is
    /// evicted at the next superstep boundary of whatever drive call is
    /// running (never mid-superstep). Either way the request's terminal
    /// outcome becomes [`ServeError::Cancelled`], drained via
    /// [`BatchServer::take_failed`]. Returns `false` when the id is
    /// neither queued nor in flight (already answered, or never
    /// submitted) — a completed request cannot be cancelled, so a
    /// cancel racing completion yields the normal response.
    pub fn cancel(&mut self, id: u64) -> bool {
        if let Some(pos) = self.queue.iter().position(|(r, _)| r.id == id) {
            self.queue.remove(pos);
            self.failed.push((id, ServeError::Cancelled));
            return true;
        }
        if self.in_flight.iter().any(|f| f.id == id) {
            self.cancel_requested.insert(id);
            return true;
        }
        false
    }

    /// Take the typed terminal failures produced by governance so far
    /// (budget evictions and cancellations) — the failure-side analogue
    /// of [`BatchServer::take_ready`]. Each request appears at most
    /// once.
    pub fn take_failed(&mut self) -> Vec<(u64, ServeError)> {
        std::mem::take(&mut self.failed)
    }

    /// Lanes evicted by governance (budget blowups + cancellations)
    /// over the server's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total supersteps currently charged across the live lanes — the
    /// aggregate in-flight budget spend a health report surfaces.
    pub fn spent_supersteps(&self) -> u64 {
        self.machine
            .lane_spend()
            .iter()
            .map(|&(_, spent, _)| spent)
            .sum()
    }

    /// The deepest the queue has ever been over the server's lifetime.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// The clock tick at which the deadline policy would force-admit the
    /// oldest queued request (`submission stamp + max_wait`), if the
    /// policy is deadline-driven and the queue is non-empty. Event loops
    /// use it to sleep until the next actionable instant.
    pub fn next_deadline(&self) -> Option<u64> {
        match self.policy {
            AdmissionPolicy::Deadline { max_wait, .. } => self
                .queue
                .front()
                .map(|&(_, stamp)| stamp.saturating_add(max_wait)),
            _ => None,
        }
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The static verification report computed once at construction
    /// (inferred signature, stack-depth bounds, divergence sites).
    pub fn report(&self) -> &PcabReport {
        &self.report
    }

    /// Requests waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently inside the in-flight batch.
    pub fn in_flight(&self) -> usize {
        self.machine.live()
    }

    /// Requests submitted over the server's lifetime.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Requests completed over the server's lifetime.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Supersteps executed by the in-flight machine.
    pub fn supersteps(&self) -> u64 {
        self.machine.supersteps()
    }

    /// Enqueue a request, stamped with the current clock. The request's
    /// inputs are checked against the program's statically inferred
    /// signature (arity, dtype, and element shape) before anything is
    /// enqueued, so invalid traffic never touches machine state.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on input arity mismatch,
    /// [`ServeError::InvalidRequest`] when an input's dtype or element
    /// shape violates the inferred signature, or
    /// [`ServeError::Overloaded`] — without enqueueing — when the queue
    /// is at its [budget](BatchServer::set_queue_budget).
    pub fn submit(&mut self, request: Request) -> Result<()> {
        let want = self.machine.program().inputs.len();
        if request.inputs.len() != want {
            return Err(ServeError::BadRequest(format!(
                "program takes {} inputs, request {} has {}",
                want,
                request.id,
                request.inputs.len()
            )));
        }
        self.check_signature(&request)?;
        if let Some(budget) = self.queue_budget {
            if self.queue.len() >= budget {
                return Err(ServeError::Overloaded {
                    depth: self.queue.len(),
                    budget,
                });
            }
        }
        // Chaos hook: an injected admission failure refuses a request
        // that would otherwise have been enqueued (arity and budget
        // passed). Every call rolls a fresh counter, so a supervised
        // retry re-rolls instead of deterministically re-failing.
        self.fault_rolls += 1;
        if self.fault.fires(FaultPoint::Admission, self.fault_rolls) {
            return Err(ServeError::Vm(VmError::Injected {
                point: FaultPoint::Admission.name(),
                counter: self.fault_rolls,
            }));
        }
        self.queue.push_back((request, self.clock));
        self.peak_pending = self.peak_pending.max(self.queue.len());
        self.submitted += 1;
        Ok(())
    }

    /// Check a request's inputs against the inferred program signature,
    /// memoizing concrete inference per distinct spec vector.
    fn check_signature(&mut self, request: &Request) -> Result<()> {
        let mut specs = Vec::with_capacity(request.inputs.len());
        for (i, t) in request.inputs.iter().enumerate() {
            let shape = t.shape();
            if shape.is_empty() {
                return Err(ServeError::BadRequest(format!(
                    "request {} input {} is rank-0; per-request inputs are [1, elem..]",
                    request.id, i
                )));
            }
            let dtype = match t.dtype() {
                DType::F64 => AbsDType::F64,
                DType::I64 => AbsDType::I64,
                DType::Bool => AbsDType::Bool,
            };
            specs.push(TensorSpec::new(dtype, &shape[1..]));
        }
        let program = self.machine.program();
        let verdict = self
            .sig_cache
            .entry(specs)
            .or_insert_with_key(|specs| infer_pcab_signature(program, specs).err());
        match verdict {
            None => Ok(()),
            Some(e) => Err(ServeError::InvalidRequest(e.clone())),
        }
    }

    /// Admit pending requests according to the policy.
    fn admit_pending(&mut self, trace: &mut Option<&mut Trace>) -> Result<()> {
        let cap = self.policy.max_batch();
        let free = cap.saturating_sub(self.machine.live());
        if self.queue.is_empty() || free == 0 {
            return Ok(());
        }
        // A machine whose cumulative step budget is exhausted can only
        // error: admitting into it would strand the requests (no longer
        // pending, never retirable). Leave them in the queue instead.
        if self.machine.step_budget_remaining() == 0 {
            return Ok(());
        }
        // The refill decision is made once, against the state *before*
        // any admission: an empty machine always refills to capacity
        // under the utilization policies (both must guarantee progress —
        // and this is exactly what makes DrainAndRefill a fixed-batch
        // baseline rather than a serial one). The deadline policy is the
        // exception: it deliberately holds requests back from an idle
        // machine until the batch can fill or the head-of-line deadline
        // expires — run_until_idle models the wait by fast-forwarding
        // the clock, so progress is still guaranteed.
        let admit = match self.policy {
            AdmissionPolicy::Deadline { max_wait, .. } => {
                let oldest = self.queue.front().map(|&(_, stamp)| stamp);
                self.queue.len() >= free
                    || oldest.is_some_and(|stamp| self.clock.saturating_sub(stamp) >= max_wait)
            }
            _ if self.machine.live() == 0 => true,
            AdmissionPolicy::JoinAtEntry {
                min_utilization, ..
            } => {
                // `min_utilization >= 1.0` disables the utilization test:
                // full lockstep (util == 1.0) must not block admission
                // under that setting — a free lane alone admits.
                let util = self.machine.last_active() as f64 / self.machine.live() as f64;
                min_utilization >= 1.0 || util < min_utilization
            }
            AdmissionPolicy::DrainAndRefill { .. } => false,
        };
        if !admit {
            return Ok(());
        }
        let batch: Vec<(Request, u64)> = (0..free.min(self.queue.len()))
            .map(|_| self.queue.pop_front().expect("checked non-empty"))
            .collect();
        let clock = self.clock;
        let admitted = {
            let reqs: Vec<(&[Tensor], u64)> = batch
                .iter()
                .map(|(r, _)| (r.inputs.as_slice(), r.seed))
                .collect();
            self.machine.admit_batch(&reqs, trace.as_deref_mut())
        };
        let tickets = match admitted {
            Ok(tickets) => tickets,
            Err(_) => {
                // Admission validates before touching the machine, so
                // in-flight members are intact — but the batch error does
                // not say *which* request is bad. Retry one at a time:
                // innocent requests are admitted, and the first offender
                // goes back to the queue head (followed, in their
                // original FIFO order, by the requests popped behind it),
                // where [`BatchServer::reject`] can drop it. Nothing is
                // lost silently and nothing is reordered.
                let mut offender: Option<((Request, u64), ServeError)> = None;
                let mut rest = Vec::new();
                for (r, stamp) in batch {
                    if offender.is_some() {
                        rest.push((r, stamp));
                    } else {
                        match self.machine.admit(&r.inputs, r.seed, trace.as_deref_mut()) {
                            Ok(ticket) => self.in_flight.push(InFlight {
                                ticket,
                                id: r.id,
                                admitted_at: self.machine.supersteps(),
                                queued_ticks: clock.saturating_sub(stamp),
                                admitted_clock: clock,
                            }),
                            Err(e) => offender = Some(((r, stamp), e.into())),
                        }
                    }
                }
                return match offender {
                    Some((r, e)) => {
                        // Re-queue with original stamps: a re-queued
                        // request's deadline still dates from its first
                        // submission.
                        for r in rest.into_iter().rev() {
                            self.queue.push_front(r);
                        }
                        self.queue.push_front(r);
                        Err(e)
                    }
                    // Defensive: every request fit individually after
                    // all — everything admitted, nothing to report.
                    None => Ok(()),
                };
            }
        };
        for (ticket, (req, stamp)) in tickets.into_iter().zip(&batch) {
            self.in_flight.push(InFlight {
                ticket,
                id: req.id,
                admitted_at: self.machine.supersteps(),
                queued_ticks: clock.saturating_sub(*stamp),
                admitted_clock: clock,
            });
        }
        Ok(())
    }

    /// Retire finished members into the [`BatchServer::ready`] buffer.
    fn collect_retired(&mut self, trace: &mut Option<&mut Trace>) -> Result<()> {
        for r in self.machine.retire_finished(trace.as_deref_mut())? {
            let pos = self
                .in_flight
                .iter()
                .position(|f| f.ticket == r.ticket)
                .expect("retired member was admitted by this server");
            let f = self.in_flight.swap_remove(pos);
            self.cancel_requested.remove(&f.id);
            self.completed += 1;
            self.ready.push(Response {
                id: f.id,
                outputs: r.outputs,
                admitted_at: f.admitted_at,
                retired_at: self.machine.supersteps(),
                queued_ticks: f.queued_ticks,
            });
        }
        Ok(())
    }

    /// Enforce the per-request budget and pending cancellations on every
    /// live lane. Runs at superstep boundaries only — between
    /// [`PcMachine::step`] calls the machine holds no fused-region
    /// intermediates, so evicting a lane is pure row compaction and
    /// cannot perturb its batchmates (see the soundness note on
    /// [`PcMachine::extract_lanes`]). Doomed lanes are extracted through
    /// the migration checkpoint path and dropped; their requests get a
    /// typed terminal error in [`BatchServer::take_failed`].
    fn enforce_governance(&mut self, trace: &mut Option<&mut Trace>) -> Result<()> {
        if self.cancel_requested.is_empty() && !self.budget.is_limited() {
            return Ok(());
        }
        let mut doomed: Vec<(u64, ServeError)> = Vec::new();
        for (ticket, spent, peak) in self.machine.lane_spend() {
            let f = self
                .in_flight
                .iter()
                .find(|f| f.ticket == ticket)
                .expect("running lane was admitted by this server");
            // Total request age: time spent queued plus virtual-clock
            // residency since admission. A request cannot dodge its
            // deadline by waiting out the queue on a busy shard.
            let elapsed = f.queued_ticks + self.clock.saturating_sub(f.admitted_clock);
            let verdict = if self.cancel_requested.contains(&f.id) {
                Some(ServeError::Cancelled)
            } else if let Some(limit) = self.budget.max_supersteps.filter(|&l| spent > l) {
                Some(ServeError::BudgetExceeded { spent, limit })
            } else if let Some(deadline) = self.budget.deadline_ticks.filter(|&d| elapsed > d) {
                Some(ServeError::DeadlineExceeded { elapsed, deadline })
            } else {
                self.budget
                    .max_lane_bytes
                    .filter(|&l| peak > l)
                    .map(|limit| ServeError::MemoryExceeded { bytes: peak, limit })
            };
            if let Some(e) = verdict {
                doomed.push((ticket, e));
            }
        }
        if doomed.is_empty() {
            return Ok(());
        }
        let tickets: Vec<u64> = doomed.iter().map(|&(t, _)| t).collect();
        // One batched extraction; the lane states are dropped — the
        // whole point is to stop spending resources on this work.
        self.machine.extract_lanes(&tickets, trace.as_deref_mut())?;
        for (ticket, e) in doomed {
            let pos = self
                .in_flight
                .iter()
                .position(|f| f.ticket == ticket)
                .expect("doomed lane was in flight");
            let f = self.in_flight.swap_remove(pos);
            self.cancel_requested.remove(&f.id);
            self.evictions += 1;
            self.failed.push((f.id, e));
        }
        Ok(())
    }

    /// Drop and return the request at the head of the queue — the one a
    /// failed admission names. Lets a caller unblock the server after
    /// [`BatchServer::run_until_idle`] returns an admission error without
    /// losing the requests queued behind it.
    pub fn reject(&mut self) -> Option<Request> {
        self.queue.pop_front().map(|(r, _)| r)
    }

    /// Take the responses completed so far without driving the machine —
    /// the way to salvage finished work after an unrecoverable execution
    /// error has [poisoned](BatchServer::poisoned) the server.
    pub fn take_ready(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.ready)
    }

    /// The execution error that poisoned this server, if any. A poisoned
    /// server refuses to run (the failed superstep left per-member state
    /// half-mutated); drain [`BatchServer::take_ready`] and rebuild.
    pub fn poisoned(&self) -> Option<&ServeError> {
        self.poisoned.as_ref()
    }

    /// Poison the server from outside the step path — the containment
    /// hook for faults that invalidate machine state without surfacing
    /// through [`BatchServer::run_until_idle`], e.g. a panic caught at a
    /// worker-thread boundary (the machine may be mid-superstep).
    /// Completed work stays salvageable via [`BatchServer::take_ready`]
    /// and the queue stays drainable via [`BatchServer::reject`].
    pub fn poison(&mut self, error: ServeError) {
        self.poisoned = Some(error);
    }

    /// Ids of requests admitted into the machine but not yet retired.
    /// After a poisoning fault these are the requests whose work is
    /// unrecoverable from this machine — the set a supervisor must
    /// retry elsewhere.
    pub fn in_flight_ids(&self) -> Vec<u64> {
        self.in_flight.iter().map(|f| f.id).collect()
    }

    /// Drive the server until the queue and the machine are both empty,
    /// returning every completed request (in completion order) —
    /// including any that completed before a previous call errored out.
    ///
    /// # Errors
    ///
    /// Three failure classes, with different recovery stories:
    ///
    /// - **Admission errors** ([`ServeError::Vm`] with
    ///   [`VmError::BadInputs`]) are recoverable: in-flight members are
    ///   intact, innocent requests popped alongside the offender are
    ///   admitted anyway, and the offender itself is back at the queue
    ///   head, where [`BatchServer::reject`] can drop it. Responses
    ///   already completed stay buffered for the next successful call.
    ///   Nothing is silently lost. ("Offender" means mismatched against
    ///   the batch's established input spec: programs are
    ///   shape-polymorphic, so the server's *first* admission fixes each
    ///   input's element shape and dtype for its lifetime — submitters
    ///   must agree on request shapes up front, as a malformed first
    ///   request would define the spec the rest are judged by.)
    /// - **The step limit** ([`VmError::StepLimit`], cumulative over the
    ///   machine's lifetime) fires *before* a block executes, so state
    ///   stays consistent: the server is not poisoned, and later calls
    ///   still retire finished members — they just cannot step further.
    ///   Queued requests stay pending (never admitted into the exhausted
    ///   machine), where [`BatchServer::reject`] can still drain them.
    /// - **Execution errors** (stack overflow/underflow) surface
    ///   mid-superstep, after some lanes already ran the block's ops —
    ///   the machine's state is half-mutated and re-driving it would
    ///   corrupt innocent members. The server is *poisoned*: this and
    ///   every later call return the error. Salvage completed work with
    ///   [`BatchServer::take_ready`] and rebuild the server.
    pub fn run_until_idle(&mut self, mut trace: Option<&mut Trace>) -> Result<Vec<Response>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        loop {
            self.collect_retired(&mut trace)?;
            self.enforce_governance(&mut trace)?;
            self.admit_pending(&mut trace)?;
            let stepped = self.step_machine(trace.as_deref_mut())?;
            if !stepped {
                self.collect_retired(&mut trace)?;
                self.enforce_governance(&mut trace)?;
                if self.queue.is_empty() && self.machine.live() == 0 {
                    return Ok(std::mem::take(&mut self.ready));
                }
                // Nothing stepped and requests remain: either the step
                // budget is exhausted (surface it rather than spinning on
                // a machine that can never run again) …
                if self.machine.step_budget_remaining() == 0 {
                    return Err(ServeError::Vm(VmError::StepLimit {
                        limit: self.step_limit,
                    }));
                }
                // … or the deadline policy is holding a partial batch
                // back from an idle machine. Nobody else advances the
                // clock inside this call, so model the wait: fast-forward
                // to the head-of-line deadline, at which point the next
                // admission check force-admits the partial batch. (This
                // is what a real front end experiences as wall-clock
                // waiting; responses record it in `queued_ticks`.)
                if self.machine.live() == 0 {
                    if let Some(deadline) = self.next_deadline() {
                        self.set_clock(deadline);
                    }
                }
            }
        }
    }

    /// One scheduling iteration: retire finished members, admit pending
    /// requests per the policy, and run **at most one** superstep.
    /// Returns whether a superstep ran. Unlike
    /// [`BatchServer::run_until_idle`] this never fast-forwards the
    /// clock: event loops interleave `poll` with [`BatchServer::submit`]
    /// and [`BatchServer::set_clock`] to model real arrival processes
    /// (sleep until [`BatchServer::next_deadline`] when it returns
    /// `false` with work pending), and drain completions with
    /// [`BatchServer::take_ready`].
    ///
    /// # Errors
    ///
    /// As [`BatchServer::run_until_idle`] — admission errors are
    /// recoverable, execution errors poison the server.
    pub fn poll(&mut self, mut trace: Option<&mut Trace>) -> Result<bool> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        self.collect_retired(&mut trace)?;
        self.enforce_governance(&mut trace)?;
        self.admit_pending(&mut trace)?;
        let stepped = self.step_machine(trace.as_deref_mut())?;
        if stepped {
            self.collect_retired(&mut trace)?;
            self.enforce_governance(&mut trace)?;
        }
        Ok(stepped)
    }

    /// Drive the server for **at most** `budget` supersteps, retiring and
    /// admitting as [`BatchServer::run_until_idle`] does, and return the
    /// responses completed so far plus the number of supersteps actually
    /// run. Unlike `run_until_idle` this never fast-forwards the clock:
    /// the affinity scheduler owns fleet-wide time, and a shard blocked
    /// on a deadline simply reports zero steps.
    ///
    /// # Errors
    ///
    /// As [`BatchServer::run_until_idle`].
    pub(crate) fn run_for(
        &mut self,
        budget: u64,
        mut trace: Option<&mut Trace>,
    ) -> Result<(Vec<Response>, u64)> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let mut steps = 0u64;
        loop {
            self.collect_retired(&mut trace)?;
            self.enforce_governance(&mut trace)?;
            self.admit_pending(&mut trace)?;
            if steps >= budget {
                break;
            }
            let stepped = self.step_machine(trace.as_deref_mut())?;
            if !stepped {
                self.collect_retired(&mut trace)?;
                self.enforce_governance(&mut trace)?;
                if self.queue.is_empty() && self.machine.live() == 0 {
                    break;
                }
                if self.machine.step_budget_remaining() == 0 {
                    return Err(ServeError::Vm(VmError::StepLimit {
                        limit: self.step_limit,
                    }));
                }
                // Deadline policy holding a partial batch: report back
                // without spinning — the scheduler decides whether the
                // whole fleet is blocked and advances the clock.
                break;
            }
            steps += 1;
        }
        Ok((std::mem::take(&mut self.ready), steps))
    }

    /// Histogram of **running** lanes per pc top — the affinity signal
    /// cross-shard routing keys on (finished lanes are excluded; they
    /// retire at the next collection and carry no affinity).
    pub fn pc_histogram(&self) -> std::collections::BTreeMap<usize, usize> {
        self.machine.pc_histogram()
    }

    /// The pc top shared by the most running lanes (ties toward the
    /// lowest pc), or `None` when nothing is running.
    pub fn majority_pc(&self) -> Option<usize> {
        self.machine.majority_pc()
    }

    /// Lanes whose pc top has not yet reached the exit.
    pub fn running(&self) -> usize {
        self.machine.running()
    }

    /// `(ticket, request id, pc)` of every running lane, in lane order.
    pub fn lane_pcs(&self) -> Vec<(u64, u64, usize)> {
        self.machine
            .lane_pcs()
            .into_iter()
            .map(|(ticket, pc)| {
                let id = self
                    .in_flight
                    .iter()
                    .find(|f| f.ticket == ticket)
                    .map(|f| f.id)
                    .expect("running lane was admitted by this server");
                (ticket, id, pc)
            })
            .collect()
    }

    /// Evict the given running lanes for re-admission on another server
    /// (straggler migration). Each migrant carries the lane's complete
    /// execution state plus the request bookkeeping the destination
    /// needs to produce an unchanged [`Response`].
    ///
    /// # Errors
    ///
    /// The poisoning error if this server is poisoned, or
    /// [`VmError::BadInputs`] for a ticket that is not a running lane
    /// (validation happens before any mutation).
    pub fn evict_lanes(
        &mut self,
        tickets: &[u64],
        trace: Option<&mut Trace>,
    ) -> Result<Vec<Migrant>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let lanes = self.machine.extract_lanes(tickets, trace)?;
        lanes
            .into_iter()
            .map(|(ticket, lane)| {
                let pos = self
                    .in_flight
                    .iter()
                    .position(|f| f.ticket == ticket)
                    .expect("extracted lane was admitted by this server");
                let f = self.in_flight.swap_remove(pos);
                Ok(Migrant {
                    id: f.id,
                    lane,
                    admitted_at: f.admitted_at,
                    queued_ticks: f.queued_ticks,
                    admitted_clock: f.admitted_clock,
                })
            })
            .collect()
    }

    /// Admit a lane evicted from another server. The lane resumes with
    /// all state intact, so its outputs are bit-identical to never
    /// having moved; `admitted_at` and `queued_ticks` carry over from
    /// the original admission.
    ///
    /// # Errors
    ///
    /// The poisoning error if this server is poisoned, or the injection
    /// errors of [`PcMachine::inject_lane`]; on error the migrant is
    /// handed back untouched alongside the error — the machine state is
    /// not mutated, so the caller can re-admit the lane elsewhere
    /// instead of losing it.
    pub fn admit_migrant(
        &mut self,
        m: Migrant,
        trace: Option<&mut Trace>,
    ) -> std::result::Result<(), Box<(Migrant, ServeError)>> {
        if let Some(e) = &self.poisoned {
            return Err(Box::new((m, e.clone())));
        }
        let ticket = match self.machine.inject_lane(&m.lane, trace) {
            Ok(ticket) => ticket,
            Err(e) => return Err(Box::new((m, ServeError::from(e)))),
        };
        self.in_flight.push(InFlight {
            ticket,
            id: m.id,
            admitted_at: m.admitted_at,
            queued_ticks: m.queued_ticks,
            admitted_clock: m.admitted_clock,
        });
        Ok(())
    }

    /// Take up to `n` requests off the **back** of the queue (the newest
    /// ones), preserving their submission stamps and relative order —
    /// the donor half of work stealing.
    pub(crate) fn steal_queued(&mut self, n: usize) -> Vec<(Request, u64)> {
        let take = n.min(self.queue.len());
        self.queue.split_off(self.queue.len() - take).into()
    }

    /// Append stolen requests (with their original stamps) to this
    /// server's queue — the thief half of work stealing. Bypasses the
    /// queue budget: the work was already accepted by the fleet.
    pub(crate) fn enqueue_stolen(&mut self, batch: Vec<(Request, u64)>) {
        self.queue.extend(batch);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Step once, translating errors per the poisoning contract.
    fn step_machine(&mut self, trace: Option<&mut Trace>) -> Result<bool> {
        match self.machine.step(trace) {
            Ok(stepped) => Ok(stepped),
            Err(e) => {
                let e = ServeError::from(e);
                // The step-limit check fires *before* the block
                // executes, so the machine is still consistent: don't
                // poison — later calls can still retire finished
                // members (they just cannot step any further).
                if !matches!(e, ServeError::Vm(VmError::StepLimit { .. })) {
                    self.poisoned = Some(e.clone());
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobatch_core::{lower, LoweringOptions};
    use autobatch_ir::build::fibonacci_program;

    fn fib_requests(ns: &[i64]) -> Vec<Request> {
        ns.iter()
            .enumerate()
            .map(|(i, &n)| Request {
                id: i as u64,
                inputs: vec![Tensor::from_i64(&[n], &[1]).unwrap()],
                seed: 1000 + i as u64,
            })
            .collect()
    }

    /// A shape-polymorphic looping program: `y = x; repeat n times
    /// { y = y + 1 }`. The branch condition only ever sees the scalar
    /// counter, so the payload `x` may be any element shape — requests
    /// with different `x` shapes all pass static verification, and a
    /// shape that disagrees with the machine's established buffers is
    /// only caught at admission. Runtime grows with `n`, staggering
    /// retirements like the recursive fibonacci does. The exit block is
    /// laid out *before* the loop blocks so the default `EarliestBlock`
    /// scheduler retires finished members while slower ones still loop
    /// (with the exit last, finishers would starve until the whole
    /// batch drained).
    fn countup_program() -> autobatch_ir::lsab::Program {
        use autobatch_ir::build::ProgramBuilder;
        use autobatch_ir::Prim;
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("countup", &["n", "x"], &["y"]);
        pb.define(f, |fb| {
            let n = fb.param(0);
            let x = fb.param(1);
            let y = fb.output(0);
            fb.assign(&y, Prim::Id, &[x]);
            let zero = fb.const_i64(0);
            let i = fb.emit(Prim::Id, &[zero]);
            let exit = fb.new_block();
            let header = fb.new_block();
            let body = fb.new_block();
            fb.jump(header);
            fb.switch_to(header);
            let c = fb.emit(Prim::Lt, &[i.clone(), n.clone()]);
            fb.branch(&c, body, exit);
            fb.switch_to(body);
            let one_f = fb.const_f64(1.0);
            fb.assign(&y, Prim::Add, &[y.clone(), one_f]);
            let one_i = fb.const_i64(1);
            fb.assign(&i, Prim::Add, &[i.clone(), one_i]);
            fb.jump(header);
            fb.switch_to(exit);
            fb.ret();
        });
        pb.finish(f).unwrap()
    }

    /// `[n, x=0.0]` request rows for `countup_program` (output: `n` as
    /// a float).
    fn countup_requests(ns: &[i64]) -> Vec<Request> {
        ns.iter()
            .enumerate()
            .map(|(i, &n)| Request {
                id: i as u64,
                inputs: vec![
                    Tensor::from_i64(&[n], &[1]).unwrap(),
                    Tensor::from_f64(&[0.0], &[1]).unwrap(),
                ],
                seed: 1000 + i as u64,
            })
            .collect()
    }

    /// A request for `countup_program` whose payload element shape is
    /// `[2]`: statically valid (the program is shape-polymorphic in
    /// `x`), but in conflict with buffers established by scalar
    /// requests — an admission-time offender.
    fn countup_vec_request(id: u64, n: i64) -> Request {
        Request {
            id,
            inputs: vec![
                Tensor::from_i64(&[n], &[1]).unwrap(),
                Tensor::from_f64(&[0.0, 0.0], &[1, 2]).unwrap(),
            ],
            seed: id,
        }
    }

    fn serve(ns: &[i64], policy: AdmissionPolicy) -> (Vec<Response>, u64) {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(ns) {
            server.submit(r).unwrap();
        }
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        (out, server.supersteps())
    }

    const NS: [i64; 10] = [14, 2, 9, 1, 12, 5, 16, 3, 10, 7];
    const FIB: [i64; 10] = [610, 2, 55, 1, 233, 8, 1597, 3, 89, 21];

    #[test]
    fn join_at_entry_serves_all_requests_correctly() {
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 3,
            min_utilization: 1.0,
        };
        let (out, _) = serve(&NS, policy);
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, FIB);
        // Some request genuinely joined mid-flight.
        assert!(
            out.iter().any(|r| r.admitted_at > 0),
            "no mid-flight admission happened"
        );
    }

    #[test]
    fn drain_and_refill_serves_all_requests_correctly() {
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 3 };
        let (out, _) = serve(&NS, policy);
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, FIB);
        // Refill batches never overlap: every admission happens when the
        // machine is empty, i.e. at a superstep where all prior
        // responses already retired.
        for r in &out {
            assert!(r.retired_at >= r.admitted_at);
        }
    }

    #[test]
    fn policies_and_admission_orders_agree_bitwise() {
        let policies = [
            AdmissionPolicy::JoinAtEntry {
                max_batch: 2,
                min_utilization: 1.0,
            },
            AdmissionPolicy::JoinAtEntry {
                max_batch: 8,
                min_utilization: 0.5,
            },
            AdmissionPolicy::DrainAndRefill { max_batch: 4 },
            AdmissionPolicy::DrainAndRefill { max_batch: 1 },
        ];
        let (reference, _) = serve(&NS, policies[0]);
        for p in &policies[1..] {
            let (out, _) = serve(&NS, *p);
            for (a, b) in reference.iter().zip(&out) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.outputs, b.outputs, "results differ under {p:?}");
            }
        }
        // Reversed submission order: same per-request results.
        let rev_ns: Vec<i64> = NS.iter().rev().copied().collect();
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let mut server = BatchServer::new(
            &pc,
            KernelRegistry::new(),
            ExecOptions::default(),
            policies[0],
        )
        .unwrap();
        for (i, &n) in rev_ns.iter().enumerate() {
            let orig = NS.len() - 1 - i;
            server
                .submit(Request {
                    id: orig as u64,
                    inputs: vec![Tensor::from_i64(&[n], &[1]).unwrap()],
                    seed: 1000 + orig as u64,
                })
                .unwrap();
        }
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        for (a, b) in reference.iter().zip(&out) {
            assert_eq!(a.outputs, b.outputs, "admission order perturbed results");
        }
    }

    #[test]
    fn drain_and_refill_fills_whole_batches() {
        // Regression: the refill decision is made against the *pre*-
        // admission state, so an empty machine refills all the way to
        // max_batch — not one request (a serial baseline in disguise).
        use autobatch_accel::{Backend, Trace};
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 3 };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(&[9, 5, 11, 7, 3, 8, 6]) {
            server.submit(r).unwrap();
        }
        let mut tr = Trace::new(Backend::hybrid_cpu());
        let out = server.run_until_idle(Some(&mut tr)).unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(tr.peak_members(), 3, "refill must reach max_batch");
    }

    #[test]
    fn join_at_entry_admits_into_lockstep_batch_with_free_lane() {
        // Regression: `min_utilization: 1.0` means "admit whenever there
        // is capacity". Members running in lockstep hold utilization at
        // exactly 1.0, which must not block a pending request from
        // taking a freed lane.
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 3,
            min_utilization: 1.0,
        };
        // Request 0 retires early; 1 and 2 are identical, so the
        // survivors run in perfect lockstep while 3 waits.
        let (out, _) = serve(&[2, 9, 9, 9], policy);
        let late = &out[3];
        let lockstep_end = out[1].retired_at.min(out[2].retired_at);
        assert!(
            late.admitted_at < lockstep_end,
            "request 3 (admitted at {}) should have joined the lockstep \
             batch before it drained (at {})",
            late.admitted_at,
            lockstep_end
        );
    }

    #[test]
    fn dynamic_admission_beats_sequential_fixed_batches() {
        // The serving claim: on a divergent workload, join-at-entry keeps
        // lanes busy while drain-and-refill serializes behind stragglers.
        use autobatch_accel::Backend;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        // Divergent depths: each refill batch contains one straggler.
        let ns: Vec<i64> = (0..24)
            .map(|i| if i % 4 == 0 { 17 } else { 2 + (i % 3) })
            .collect();
        let mut times = Vec::new();
        for policy in [
            AdmissionPolicy::JoinAtEntry {
                max_batch: 4,
                min_utilization: 1.0,
            },
            AdmissionPolicy::DrainAndRefill { max_batch: 4 },
        ] {
            let mut server =
                BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy)
                    .unwrap();
            for r in fib_requests(&ns) {
                server.submit(r).unwrap();
            }
            let mut tr = Trace::new(Backend::hybrid_cpu());
            let out = server.run_until_idle(Some(&mut tr)).unwrap();
            assert_eq!(out.len(), ns.len());
            times.push(tr.sim_time());
        }
        assert!(
            times[0] < times[1],
            "dynamic admission ({}) should beat drain-and-refill ({})",
            times[0],
            times[1]
        );
    }

    #[test]
    fn failed_admission_requeues_requests_and_loses_nothing() {
        // A request whose payload shape conflicts with the machine's
        // established buffers (statically valid — the program is
        // shape-polymorphic — so submit admits it) errors at admission;
        // the requests popped alongside it go back into the queue,
        // in-flight members stay intact, and responses completed before
        // the error are returned by the next successful run — nothing
        // is silently lost.
        let pc = {
            let (pc, _) = lower(&countup_program(), LoweringOptions::default()).unwrap();
            pc
        };
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        // Two long requests fill the machine; a short one retires first
        // and frees a lane for the poisoned request.
        for r in countup_requests(&[12, 2]) {
            server.submit(r).unwrap();
        }
        server.submit(countup_vec_request(2, 3)).unwrap();
        for mut r in countup_requests(&[5]) {
            r.id = 3;
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None);
        assert!(matches!(err, Err(ServeError::Vm(_))), "got {err:?}");
        // The poisoned request is back at the queue head with the good
        // one behind it; the long member is still in flight.
        assert_eq!(server.pending(), 2);
        assert_eq!(server.in_flight(), 1);
        // Drop the poisoned request and finish: every good request's
        // response arrives, including the one completed before the error.
        let rejected = server.reject().unwrap();
        assert_eq!(rejected.id, 2);
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        let got: Vec<f64> = out
            .iter()
            .map(|r| r.outputs[0].as_f64().unwrap()[0])
            .collect();
        assert_eq!(
            got,
            vec![12.0, 2.0, 5.0],
            "countup(12), countup(2), countup(5)"
        );
    }

    #[test]
    fn failed_batch_admission_admits_innocents_and_heads_the_offender() {
        // When the offender is popped *behind* innocent requests, the
        // innocents must be admitted (not re-queued behind a recovery
        // that would drop them) and the offender must end up at the
        // queue head, where `reject` removes exactly the bad request.
        let (pc, _) = lower(&countup_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in countup_requests(&[9]) {
            server.submit(r).unwrap();
        }
        server.submit(countup_vec_request(1, 4)).unwrap();
        let err = server.run_until_idle(None);
        assert!(matches!(err, Err(ServeError::Vm(_))), "got {err:?}");
        assert_eq!(server.in_flight(), 1, "the good request was admitted");
        assert_eq!(server.pending(), 1, "only the offender is queued");
        assert_eq!(server.reject().unwrap().id, 1, "offender at the head");
        let out = server.run_until_idle(None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[0].outputs[0].as_f64().unwrap(), &[9.0]);
    }

    #[test]
    fn statically_invalid_traffic_is_rejected_at_submit() {
        // Requests violating the inferred signature never touch machine
        // state: rejected with a typed error at submission, not at
        // admission.
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        assert!(server.report().ok());
        // Wrong dtype: fibonacci's input must be an integer.
        let err = server
            .submit(Request {
                id: 0,
                inputs: vec![Tensor::from_f64(&[1.0], &[1]).unwrap()],
                seed: 0,
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)), "{err:?}");
        // Wrong element shape: a [2] element would make the recursion's
        // branch condition non-scalar.
        let err = server
            .submit(Request {
                id: 1,
                inputs: vec![Tensor::from_i64(&[1, 2], &[1, 2]).unwrap()],
                seed: 1,
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)), "{err:?}");
        assert_eq!(server.pending(), 0, "nothing was enqueued");
        assert_eq!(server.submitted(), 0);
        // Valid traffic still flows on the same server.
        for r in fib_requests(&[6]) {
            server.submit(r).unwrap();
        }
        let out = server.run_until_idle(None).unwrap();
        assert_eq!(out[0].outputs[0].as_i64().unwrap(), &[13]);
    }

    #[test]
    fn ill_typed_program_is_rejected_at_construction() {
        // An intrinsically ill-typed program (f64 + bool) never gets a
        // machine: `BatchServer::new` fails with the verifier's
        // diagnostic.
        use autobatch_ir::pcab::{Block, Op, Terminator, VarClass, WriteKind};
        use autobatch_ir::{BlockId, Prim, Var};
        let z = Var::new("z");
        let c = Var::new("c");
        let b = Var::new("b");
        let program = Program {
            blocks: vec![Block {
                ops: vec![
                    Op::Compute {
                        outs: vec![(c.clone(), WriteKind::Update)],
                        prim: Prim::ConstF64(1.0),
                        ins: vec![],
                    },
                    Op::Compute {
                        outs: vec![(b.clone(), WriteKind::Update)],
                        prim: Prim::ConstBool(true),
                        ins: vec![],
                    },
                    Op::Compute {
                        outs: vec![(z.clone(), WriteKind::Update)],
                        prim: Prim::Add,
                        ins: vec![c.clone(), b.clone()],
                    },
                ],
                term: Terminator::Return,
            }],
            entry: BlockId(0),
            inputs: vec![],
            outputs: vec![z.clone()],
            classes: [(z, VarClass::Register)].into_iter().collect(),
        };
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 1.0,
        };
        let err = BatchServer::new(
            &program,
            KernelRegistry::new(),
            ExecOptions::default(),
            policy,
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidProgram(_)), "{err:?}");
    }

    #[test]
    fn step_limit_does_not_poison_and_finished_work_remains_retirable() {
        // The cumulative step limit fires before a block executes, so the
        // machine is consistent: the server must not poison itself, and a
        // member that finished before the limit is still retired/returned.
        use autobatch_core::VmError;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let opts = ExecOptions {
            max_supersteps: 30,
            ..ExecOptions::default()
        };
        // max_batch 2 leaves a free lane after the short member retires,
        // so the post-limit admission gate (not the capacity check) is
        // what must keep later submissions out of the dead machine.
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 2 };
        let mut server = BatchServer::new(&pc, KernelRegistry::new(), opts, policy).unwrap();
        for r in fib_requests(&[2, 15]) {
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None).unwrap_err();
        assert!(
            matches!(err, ServeError::Vm(VmError::StepLimit { .. })),
            "{err:?}"
        );
        assert!(server.poisoned().is_none(), "step limit must not poison");
        // Requests submitted after exhaustion must stay pending — never
        // admitted into a machine that can only error — so they remain
        // reachable through `reject`.
        for mut r in fib_requests(&[4]) {
            r.id = 2;
            server.submit(r).unwrap();
        }
        let in_flight_before = server.in_flight();
        assert_eq!(in_flight_before, 1, "long member still in flight");
        // A later call re-raises the limit, but the completed response
        // survives for salvage and the queue is untouched.
        assert_eq!(server.run_until_idle(None).unwrap_err(), err);
        assert_eq!(
            server.in_flight(),
            in_flight_before,
            "no stranded admission"
        );
        assert_eq!(server.reject().map(|r| r.id), Some(2));
        let ready = server.take_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].outputs[0].as_i64().unwrap(), &[2]);
    }

    #[test]
    fn exhaustion_with_pending_requests_errors_instead_of_spinning() {
        // Regression: if the step budget runs out exactly as the machine
        // drains while requests are still queued, run_until_idle must
        // surface StepLimit — not busy-loop on a machine that can never
        // step again with admissions refused.
        use autobatch_core::VmError;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        // Measure the supersteps one fib(2) request needs end to end.
        let mut probe =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(&[2]) {
            probe.submit(r).unwrap();
        }
        probe.run_until_idle(None).unwrap();
        let steps = probe.supersteps();
        // Budget for exactly one request, two submitted.
        let opts = ExecOptions {
            max_supersteps: steps,
            ..ExecOptions::default()
        };
        let mut server = BatchServer::new(&pc, KernelRegistry::new(), opts, policy).unwrap();
        for r in fib_requests(&[2, 2]) {
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None).unwrap_err();
        assert!(
            matches!(err, ServeError::Vm(VmError::StepLimit { .. })),
            "{err:?}"
        );
        assert!(server.poisoned().is_none());
        // The completed request is salvageable, the other stays queued.
        assert_eq!(server.take_ready().len(), 1);
        assert_eq!(server.pending(), 1);
    }

    #[test]
    fn execution_error_poisons_server_but_completed_work_is_salvageable() {
        // An execution error (here: stack overflow) surfaces mid-
        // superstep, with per-member state half-mutated — re-driving the
        // machine would corrupt innocent members. The server must refuse
        // further runs, while work completed before the failure stays
        // retrievable.
        use autobatch_core::VmError;
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let opts = ExecOptions {
            stack_depth: 16,
            ..ExecOptions::default()
        };
        // Serial batches make the order deterministic: request 0 fully
        // completes (and is buffered) before request 1 is even admitted.
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        let mut server = BatchServer::new(&pc, KernelRegistry::new(), opts, policy).unwrap();
        for r in fib_requests(&[2, 40]) {
            server.submit(r).unwrap();
        }
        let err = server.run_until_idle(None).unwrap_err();
        assert!(
            matches!(err, ServeError::Vm(VmError::StackOverflow { .. })),
            "{err:?}"
        );
        // Poisoned: every later run refuses with the same error.
        assert_eq!(server.run_until_idle(None).unwrap_err(), err);
        assert!(server.poisoned().is_some());
        // The request that completed before the failure is salvageable.
        let ready = server.take_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].id, 0);
        assert_eq!(ready[0].outputs[0].as_i64().unwrap(), &[2]);
    }

    #[test]
    fn deadline_holds_partial_batches_until_the_deadline() {
        // max_batch 4 with only 2 requests pending: admission must wait
        // for the head-of-line deadline, not launch a half-empty batch
        // immediately — and not wait past the deadline either.
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::Deadline {
            max_batch: 4,
            max_wait: 100,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(&[9, 5]) {
            server.submit(r).unwrap();
        }
        // Under poll (no fast-forward), nothing may run before the
        // deadline: the batch is partial and the clock hasn't moved.
        assert!(!server.poll(None).unwrap());
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.pending(), 2);
        assert_eq!(server.next_deadline(), Some(100));
        // One tick short of the deadline: still held.
        server.set_clock(99);
        assert!(!server.poll(None).unwrap());
        assert_eq!(server.in_flight(), 0);
        // At the deadline the partial batch launches.
        server.set_clock(100);
        server.poll(None).unwrap();
        assert_eq!(server.in_flight(), 2);
        assert_eq!(server.pending(), 0);
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        assert_eq!(out.len(), 2);
        // Both requests waited exactly until the deadline fired.
        assert!(out.iter().all(|r| r.queued_ticks == 100), "{out:?}");
    }

    #[test]
    fn deadline_admits_immediately_when_the_batch_fills() {
        // Enough pending requests to fill every free lane: no waiting.
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::Deadline {
            max_batch: 3,
            max_wait: 1_000_000,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in fib_requests(&[9, 5, 7]) {
            server.submit(r).unwrap();
        }
        assert!(server.poll(None).unwrap());
        assert_eq!(server.in_flight(), 3);
        let out = server.run_until_idle(None).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.queued_ticks == 0), "{out:?}");
    }

    #[test]
    fn run_until_idle_fast_forwards_a_blocked_deadline_queue() {
        // run_until_idle must never spin when the deadline policy holds a
        // partial batch back from an idle machine: it fast-forwards the
        // clock to the head-of-line deadline, and the wait shows up in
        // queued_ticks.
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::Deadline {
            max_batch: 8,
            max_wait: 250,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        // 3 requests against capacity 8: the batch can never fill, so
        // only the deadline can admit them.
        for r in fib_requests(&[14, 2, 9]) {
            server.submit(r).unwrap();
        }
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.outputs[0].as_i64().unwrap()[0])
            .collect();
        assert_eq!(got, vec![610, 2, 55]);
        // Every request waited exactly the fast-forwarded deadline.
        let waits: Vec<u64> = out.iter().map(|r| r.queued_ticks).collect();
        assert_eq!(waits, vec![250, 250, 250]);
        assert_eq!(server.clock(), 250, "clock was fast-forwarded");
    }

    #[test]
    fn deadline_results_match_join_at_entry_bitwise() {
        let join = AdmissionPolicy::JoinAtEntry {
            max_batch: 4,
            min_utilization: 1.0,
        };
        let deadline = AdmissionPolicy::Deadline {
            max_batch: 4,
            max_wait: 17,
        };
        let (reference, _) = serve(&NS, join);
        let (out, _) = serve(&NS, deadline);
        for (a, b) in reference.iter().zip(&out) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outputs, b.outputs, "deadline admission perturbed results");
        }
    }

    #[test]
    fn queue_budget_sheds_load_with_a_typed_rejection() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::Deadline {
            max_batch: 2,
            max_wait: 50,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        server.set_queue_budget(Some(2));
        assert_eq!(server.queue_budget(), Some(2));
        for r in fib_requests(&[9, 5]) {
            server.submit(r).unwrap();
        }
        // Third submission: queue at budget → typed rejection, nothing
        // enqueued, lifetime counter untouched.
        let mut extra = fib_requests(&[7]);
        extra[0].id = 2;
        let err = server.submit(extra.remove(0)).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                depth: 2,
                budget: 2
            }
        );
        assert_eq!(server.pending(), 2);
        assert_eq!(server.submitted(), 2);
        assert_eq!(server.peak_pending(), 2);
        // Draining the queue frees budget for new submissions.
        let out = server.run_until_idle(None).unwrap();
        assert_eq!(out.len(), 2);
        let mut retry = fib_requests(&[7]);
        retry[0].id = 2;
        server.submit(retry.remove(0)).unwrap();
        let out = server.run_until_idle(None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].outputs[0].as_i64().unwrap(), &[21]);
    }

    #[test]
    fn failed_admission_requeues_in_original_fifo_order() {
        // Satellite regression: when a batch admission fails, the
        // offender must land back at the queue *head* with every request
        // popped behind it following in the original FIFO order — and
        // `reject()` must then drop exactly the offender.
        let (pc, _) = lower(&countup_program(), LoweringOptions::default()).unwrap();
        // max_batch 4 pops the offender and both requests behind it in
        // one admission attempt.
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 4,
            min_utilization: 1.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in countup_requests(&[9]) {
            server.submit(r).unwrap();
        }
        server.submit(countup_vec_request(1, 4)).unwrap();
        let late = |id: u64, n: i64| {
            let mut r = countup_requests(&[n]).remove(0);
            r.id = id;
            r.seed = 1000 + id;
            r
        };
        for (id, n) in [(2u64, 5i64), (3, 7)] {
            server.submit(late(id, n)).unwrap();
        }
        let err = server.run_until_idle(None);
        assert!(matches!(err, Err(ServeError::Vm(_))), "got {err:?}");
        // The innocent request ahead of the offender was admitted; the
        // offender and both requests behind it were re-queued.
        assert_eq!(server.in_flight(), 1);
        assert_eq!(server.pending(), 3);
        // `reject()` drops exactly the offender…
        assert_eq!(server.reject().map(|r| r.id), Some(1));
        // …and the queue behind it is still in original FIFO order
        // (witnessed destructively, then re-submitted).
        assert_eq!(server.reject().map(|r| r.id), Some(2));
        assert_eq!(server.reject().map(|r| r.id), Some(3));
        for (id, n) in [(2u64, 5i64), (3, 7)] {
            server.submit(late(id, n)).unwrap();
        }
        let mut out = server.run_until_idle(None).unwrap();
        out.sort_by_key(|r| r.id);
        let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        let got: Vec<f64> = out
            .iter()
            .map(|r| r.outputs[0].as_f64().unwrap()[0])
            .collect();
        assert_eq!(
            got,
            vec![9.0, 5.0, 7.0],
            "countup(9), countup(5), countup(7)"
        );
    }

    #[test]
    fn nonsense_policy_parameters_are_rejected_at_construction() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        let bad = [
            AdmissionPolicy::JoinAtEntry {
                max_batch: 0,
                min_utilization: 1.0,
            },
            AdmissionPolicy::JoinAtEntry {
                max_batch: 4,
                min_utilization: f64::NAN,
            },
            AdmissionPolicy::JoinAtEntry {
                max_batch: 4,
                min_utilization: -0.5,
            },
            AdmissionPolicy::JoinAtEntry {
                max_batch: 4,
                min_utilization: f64::INFINITY,
            },
            AdmissionPolicy::DrainAndRefill { max_batch: 0 },
            AdmissionPolicy::Deadline {
                max_batch: 0,
                max_wait: 100,
            },
        ];
        for policy in bad {
            assert!(
                matches!(policy.validate(), Err(ServeError::BadPolicy(_))),
                "{policy:?} should not validate"
            );
            assert!(
                matches!(
                    BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy),
                    Err(ServeError::BadPolicy(_))
                ),
                "{policy:?} should not construct a server"
            );
        }
        // The documented boundary values stay valid.
        for ok in [0.0, 0.5, 1.0, 2.0] {
            AdmissionPolicy::JoinAtEntry {
                max_batch: 1,
                min_utilization: ok,
            }
            .validate()
            .unwrap();
        }
        AdmissionPolicy::Deadline {
            max_batch: 1,
            max_wait: 0,
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn bad_requests_and_policies_rejected() {
        let (pc, _) = lower(&fibonacci_program(), LoweringOptions::default()).unwrap();
        assert!(matches!(
            BatchServer::new(
                &pc,
                KernelRegistry::new(),
                ExecOptions::default(),
                AdmissionPolicy::DrainAndRefill { max_batch: 0 },
            ),
            Err(ServeError::BadPolicy(_))
        ));
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 2 };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        let err = server.submit(Request {
            id: 0,
            inputs: vec![],
            seed: 0,
        });
        assert!(matches!(err, Err(ServeError::BadRequest(_))));
    }

    /// Like `countup_program`, but with a data-dependent termination
    /// hazard: `i` counts **up** toward `n` under an `i != n` loop
    /// condition, so `n >= 0` terminates after `n` iterations while
    /// `n < 0` never reaches its target — a genuinely non-terminating
    /// loop (the PR 8 verifier reports it `Unbounded`; only runtime
    /// governance can contain it).
    fn runaway_program() -> autobatch_ir::lsab::Program {
        use autobatch_ir::build::ProgramBuilder;
        use autobatch_ir::Prim;
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("runaway", &["n", "x"], &["y"]);
        pb.define(f, |fb| {
            let n = fb.param(0);
            let x = fb.param(1);
            let y = fb.output(0);
            fb.assign(&y, Prim::Id, &[x]);
            let zero = fb.const_i64(0);
            let i = fb.emit(Prim::Id, &[zero]);
            let exit = fb.new_block();
            let header = fb.new_block();
            let body = fb.new_block();
            fb.jump(header);
            fb.switch_to(header);
            let c = fb.emit(Prim::NeE, &[i.clone(), n.clone()]);
            fb.branch(&c, body, exit);
            fb.switch_to(body);
            let one_f = fb.const_f64(1.0);
            fb.assign(&y, Prim::Add, &[y.clone(), one_f]);
            let one_i = fb.const_i64(1);
            fb.assign(&i, Prim::Add, &[i.clone(), one_i]);
            fb.jump(header);
            fb.switch_to(exit);
            fb.ret();
        });
        pb.finish(f).unwrap()
    }

    fn runaway_requests(ns: &[i64]) -> Vec<Request> {
        ns.iter()
            .enumerate()
            .map(|(i, &n)| Request {
                id: i as u64,
                inputs: vec![
                    Tensor::from_i64(&[n], &[1]).unwrap(),
                    Tensor::from_f64(&[0.0], &[1]).unwrap(),
                ],
                seed: 1000 + i as u64,
            })
            .collect()
    }

    #[test]
    fn runaway_lane_is_evicted_within_the_budget_contract() {
        let (pc, _) = lower(&runaway_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 4,
            min_utilization: 1.0,
        };
        // Baseline: the normal traffic alone, unbudgeted and fault-free.
        let mut baseline =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in runaway_requests(&[3, 7, 5]) {
            baseline.submit(r).unwrap();
        }
        let mut reference = baseline.run_until_idle(None).unwrap();
        reference.sort_by_key(|r| r.id);

        // Same traffic plus a genuinely non-terminating batchmate.
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        let limit = 32u64;
        server.set_budget(RequestBudget {
            max_supersteps: Some(limit),
            ..RequestBudget::unlimited()
        });
        let mut requests = runaway_requests(&[3, 7, 5]);
        requests.push(Request {
            id: 3,
            inputs: vec![
                Tensor::from_i64(&[-1], &[1]).unwrap(),
                Tensor::from_f64(&[0.0], &[1]).unwrap(),
            ],
            seed: 1003,
        });
        for r in requests {
            server.submit(r).unwrap();
        }
        // `run_until_idle` returns: the runaway is evicted, not waited on.
        let mut done = server.run_until_idle(None).unwrap();
        done.sort_by_key(|r| r.id);

        // Typed verdict, within `max_supersteps + 1` supersteps of
        // admission (the charge that first *exceeds* the limit).
        let failed = server.take_failed();
        assert_eq!(failed.len(), 1);
        let (id, error) = &failed[0];
        assert_eq!(*id, 3);
        match error {
            ServeError::BudgetExceeded { spent, limit: l } => {
                assert_eq!(*l, limit);
                assert_eq!(
                    *spent,
                    limit + 1,
                    "eviction must fire on the first over-budget charge"
                );
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(server.evictions(), 1);

        // Batchmates are bit-identical to the run without the runaway.
        assert_eq!(done.len(), reference.len());
        for (a, b) in reference.iter().zip(&done) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outputs, b.outputs, "eviction perturbed request {}", a.id);
        }
        // The server is healthy and idle, not wedged or poisoned.
        assert!(server.poisoned().is_none());
        assert_eq!(server.pending(), 0);
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn deadline_budget_evicts_a_lane_that_overstays() {
        let (pc, _) = lower(&runaway_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 0.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        server.set_budget(RequestBudget {
            deadline_ticks: Some(10),
            ..RequestBudget::unlimited()
        });
        for r in runaway_requests(&[-1]) {
            server.submit(r).unwrap();
        }
        // Step the runaway a little, then let the virtual clock jump
        // past its deadline: the next superstep boundary evicts it.
        for _ in 0..3 {
            server.poll(None).unwrap();
        }
        server.set_clock(1_000);
        while server.poll(None).unwrap() {}
        let failed = server.take_failed();
        assert_eq!(failed.len(), 1);
        assert!(
            matches!(
                failed[0].1,
                ServeError::DeadlineExceeded { deadline: 10, .. }
            ),
            "expected DeadlineExceeded, got {:?}",
            failed[0].1
        );
        assert!(server.poisoned().is_none());
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn memory_budget_evicts_a_lane_over_its_byte_ceiling() {
        let (pc, _) = lower(&runaway_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::JoinAtEntry {
            max_batch: 2,
            min_utilization: 0.0,
        };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        // Any real lane holds more than one byte of registers.
        server.set_budget(RequestBudget {
            max_lane_bytes: Some(1),
            ..RequestBudget::unlimited()
        });
        for r in runaway_requests(&[-1]) {
            server.submit(r).unwrap();
        }
        let done = server.run_until_idle(None).unwrap();
        assert!(done.is_empty());
        let failed = server.take_failed();
        assert_eq!(failed.len(), 1);
        assert!(
            matches!(failed[0].1, ServeError::MemoryExceeded { limit: 1, bytes } if bytes > 1),
            "expected MemoryExceeded, got {:?}",
            failed[0].1
        );
    }

    #[test]
    fn cancel_resolves_queued_and_in_flight_requests() {
        let (pc, _) = lower(&runaway_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        // id 0 is a runaway that will be admitted first (max_batch 1);
        // id 1 waits in the queue behind it.
        for r in runaway_requests(&[-1, 4]) {
            server.submit(r).unwrap();
        }
        // Queued cancellation resolves immediately, without running.
        assert!(server.cancel(1));
        assert_eq!(server.pending(), 1);
        // Unknown ids are a no-op.
        assert!(!server.cancel(99));
        // In-flight cancellation lands at the next superstep boundary.
        for _ in 0..3 {
            server.poll(None).unwrap();
        }
        assert!(server.cancel(0));
        let done = server.run_until_idle(None).unwrap();
        assert!(done.is_empty());
        let mut failed = server.take_failed();
        failed.sort_by_key(|&(id, _)| id);
        assert_eq!(failed.len(), 2);
        assert!(matches!(failed[0], (0, ServeError::Cancelled)));
        assert!(matches!(failed[1], (1, ServeError::Cancelled)));
        assert_eq!(
            server.evictions(),
            1,
            "only the in-flight cancel evicts a lane"
        );
        assert!(server.poisoned().is_none());
        assert_eq!(server.pending(), 0);
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn completion_wins_a_cancel_race() {
        let (pc, _) = lower(&runaway_program(), LoweringOptions::default()).unwrap();
        let policy = AdmissionPolicy::DrainAndRefill { max_batch: 1 };
        let mut server =
            BatchServer::new(&pc, KernelRegistry::new(), ExecOptions::default(), policy).unwrap();
        for r in runaway_requests(&[2]) {
            server.submit(r).unwrap();
        }
        let done = server.run_until_idle(None).unwrap();
        assert_eq!(done.len(), 1);
        // The request already retired: a late cancel matches nothing.
        assert!(!server.cancel(0));
        assert!(server.take_failed().is_empty());
    }
}
