//! The TCP front door: deadline-driven batch collection over a socket.
//!
//! Starts an `IngressServer` on a loopback port, speaks the
//! length-prefixed wire protocol to it with `IngressClient`, and walks
//! through the three behaviours the ingress layer adds on top of the
//! sharded server: full batches under load, partial batches launched at
//! the deadline under light load, and typed load shedding past the
//! queue budget.
//!
//! Run with: `cargo run --release --example ingress_demo`

use std::time::{Duration, Instant};

use autobatch::core::{lower, LoweringOptions};
use autobatch::ingress::{IngressClient, IngressConfig, IngressError, IngressServer};
use autobatch::lang::compile;
use autobatch::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        // C(n, k) by Pascal's rule — doubly data-dependent recursion.
        fn binom(n: int, k: int) -> (out: int) {
            if k <= 0 {
                out = 1;
            } else if k >= n {
                out = 1;
            } else {
                let left = binom(n - 1, k - 1);
                let right = binom(n - 1, k);
                out = left + right;
            }
        }
    ";
    let (program, _) = lower(&compile(source, "binom")?, LoweringOptions::default())?;
    let request = |n: i64, k: i64| -> Result<Vec<Tensor>, Box<dyn std::error::Error>> {
        Ok(vec![
            Tensor::from_i64(&[n], &[1])?,
            Tensor::from_i64(&[k], &[1])?,
        ])
    };

    // ---- Part 1: a pipelined burst fills batches ----------------------
    // 2 workers × batch 4: eight requests sent back to back fill the
    // fleet, so the engine flushes on capacity, not on the deadline.
    let max_wait = Duration::from_millis(30);
    let handle = IngressServer::start(
        program.clone(),
        IngressConfig {
            workers: 2,
            max_batch: 4,
            max_wait,
            ..IngressConfig::default()
        },
        "127.0.0.1:0",
    )?;
    println!("ingress listening on {}", handle.addr());

    let pairs: [(i64, i64); 8] = [
        (10, 2),
        (12, 6),
        (9, 4),
        (14, 7),
        (8, 0),
        (11, 11),
        (13, 5),
        (7, 3),
    ];
    let mut client = IngressClient::connect(handle.addr())?;
    for (i, &(n, k)) in pairs.iter().enumerate() {
        client.send(i as u64, i as u64, &request(n, k)?)?;
    }
    let mut replies: Vec<_> = (0..pairs.len())
        .map(|_| client.recv())
        .collect::<Result<_, _>>()?;
    replies.sort_by_key(|r| r.id);
    println!("\nC(n, k) over TCP:");
    for (&(n, k), r) in pairs.iter().zip(&replies) {
        println!("  C({n:2}, {k:2}) = {}", r.outputs[0]);
    }
    assert_eq!(replies[0].outputs[0].as_i64()?, &[45], "C(10, 2)");
    assert_eq!(replies[3].outputs[0].as_i64()?, &[3432], "C(14, 7)");

    // ---- Part 2: a lone request launches at the deadline --------------
    // Nothing else is coming, so the partial batch cannot fill; the
    // head-of-line deadline launches it after max_wait instead of never.
    let t0 = Instant::now();
    let lone = client.call(99, 99, &request(10, 5)?)?;
    let elapsed = t0.elapsed();
    println!(
        "\nlone request: C(10, 5) = {} after {elapsed:.1?} \
         (deadline {max_wait:?}, queued {:.1?} server-side)",
        lone.outputs[0],
        Duration::from_nanos(lone.queued_ticks),
    );
    assert_eq!(lone.outputs[0].as_i64()?, &[252]);
    assert!(
        elapsed >= max_wait,
        "a partial batch must wait out the deadline"
    );
    drop(client);
    let stats = handle.shutdown();
    println!("part 1+2 stats: {stats:?}");
    assert_eq!(stats.completed, 9);

    // ---- Part 3: load shedding past the queue budget ------------------
    // One worker with a queue budget of 1 and a long deadline: the first
    // arrival waits in the collection buffer, and everything behind it
    // is shed immediately with a typed Overloaded reject frame — no
    // client waits out a deadline it was always going to miss.
    let handle = IngressServer::start(
        program,
        IngressConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(300),
            queue_budget: Some(1),
            ..IngressConfig::default()
        },
        "127.0.0.1:0",
    )?;
    let mut client = IngressClient::connect(handle.addr())?;
    for id in 0..3u64 {
        client.send(id, id, &request(9, 3)?)?;
    }
    let (mut served, mut shed) = (0, 0);
    for _ in 0..3 {
        match client.recv() {
            Ok(r) => {
                assert_eq!(r.outputs[0].as_i64()?, &[84], "C(9, 3)");
                served += 1;
            }
            Err(IngressError::Rejected(reject)) => {
                println!("shed: {reject}");
                shed += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!("overload: {served} served, {shed} shed at budget 1");
    assert_eq!((served, shed), (1, 2));
    drop(client);
    let stats = handle.shutdown();
    assert_eq!((stats.completed, stats.shed), (1, 2));
    println!("part 3 stats: {stats:?}");
    Ok(())
}
