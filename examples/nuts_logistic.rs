//! Bayesian logistic regression with batched NUTS (the paper's §4.1
//! workload, scaled down to run quickly): cross-validate batched chains
//! against the native recursive sampler, then price the same run on
//! several simulated backends — a single-row Figure 5.
//!
//! Run with: `cargo run --release --example nuts_logistic`

use std::sync::Arc;

use autobatch::accel::{Backend, Trace};
use autobatch::models::{LogisticRegression, Model};
use autobatch::nuts::{BatchNuts, NativeNuts, NutsConfig};
use autobatch::tensor::CounterRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic posterior (the paper uses 10,000 × 100; see the
    // fig5_throughput bench for the paper-priced version).
    let model = Arc::new(LogisticRegression::synthetic(200, 10, 42));
    let cfg = NutsConfig {
        step_size: 0.1,
        n_trajectories: 5,
        max_depth: 6,
        leapfrog_steps: 4,
        seed: 9,
    };
    println!(
        "posterior: logistic regression, {} data points, {} regressors",
        model.n_data(),
        model.dim()
    );

    let chains = 8;
    let rng = CounterRng::new(77);
    let q0 = rng.normal_batch(&(0..chains as i64).collect::<Vec<_>>(), &[model.dim()]);

    // Batched run (program counter autobatching).
    let nuts = BatchNuts::new(model.clone(), cfg)?;
    let mut trace = Trace::recording(Backend::xla_cpu());
    let batched = nuts.run_pc(&q0, Some(&mut trace))?;

    // Native chains, one at a time — must agree exactly.
    let native = NativeNuts::new(model.as_ref(), cfg);
    let (native_out, stats) = native.run_chains(&q0, None)?;
    let (a, b) = (batched.as_f64()?, native_out.as_f64()?);
    let max_err = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    println!("batched vs native max |Δ| over all chains: {max_err:.2e}");
    assert!(max_err < 1e-9, "batched and native chains agree");

    println!(
        "\nnative sampler: {} gradients, {} leaves, {} divergences",
        stats.grads, stats.leaves, stats.divergences
    );
    println!(
        "tree depths per trajectory (chain-major): {:?}",
        stats.depths
    );

    // Price the same batched run under different simulated backends.
    println!("\nsimulated cost of the identical batched run ({chains} chains):");
    for backend in [Backend::xla_cpu(), Backend::xla_gpu()] {
        let priced = trace.replay_as(backend);
        println!(
            "  {:>8}: {:.1} ms simulated, {:.0} useful gradients/s",
            backend.name,
            priced.sim_time() * 1e3,
            priced.useful_count("grad") as f64 / priced.sim_time()
        );
    }
    Ok(())
}
