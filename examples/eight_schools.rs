//! The full "many independent chains" workflow the paper motivates:
//! Bayesian inference on the eight-schools hierarchical model with
//!
//! 1. per-chain dual-averaging warmup (native sampler, Hoffman & Gelman
//!    Alg. 6),
//! 2. a *batched* sampling phase — every chain continues its exact RNG
//!    stream inside one program-counter-autobatched batch, with
//!    per-member step sizes and counters as ordinary batch inputs,
//! 3. cross-chain convergence diagnostics (rank-normalized split-R̂,
//!    bulk/tail ESS) from `autobatch-diagnostics`.
//!
//! Run with: `cargo run --release --example eight_schools [chains] [draws]`

use std::sync::Arc;

use autobatch::diagnostics::{summarize, ParameterSummary};
use autobatch::models::{EightSchools, Model};
use autobatch::nuts::{AdaptiveNuts, BatchNuts, NutsConfig};
use autobatch::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let chains: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let draws: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);
    let warmup = 100;

    let model = EightSchools::classic();
    let dim = model.dim();
    let cfg = NutsConfig {
        step_size: 0.2, // replaced per chain by adaptation
        n_trajectories: 1,
        max_depth: 7,
        leapfrog_steps: 2,
        seed: 8,
    };
    println!(
        "eight schools (non-centered, dim {dim}): {chains} chains, \
         {warmup} warmup + {draws} draws"
    );

    // 1. Adapt each chain natively.
    let adapter = AdaptiveNuts::new(&model, cfg, 0.8);
    let q0 = Tensor::zeros(autobatch::tensor::DType::F64, &[chains, dim]);
    let adapted = adapter.warmup_chains(&q0, warmup)?;
    let eps: Vec<f64> = adapted.iter().map(|c| c.step_size).collect();
    println!(
        "adapted step sizes: min {:.4}, max {:.4}",
        eps.iter().cloned().fold(f64::INFINITY, f64::min),
        eps.iter().cloned().fold(0.0, f64::max),
    );

    // 2. Batched sampling: one trajectory per call so every draw is kept.
    let nuts = BatchNuts::new(Arc::new(model.clone()), cfg)?;
    let mut q = Tensor::concat_rows(
        &adapted
            .iter()
            .map(|c| Ok(c.state.position()?.reshape(&[1, dim])?))
            .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?,
    )?;
    let eps_t = Tensor::from_f64(&eps, &[chains])?;
    let mut counters = Tensor::from_i64(
        &adapted
            .iter()
            .map(|c| c.state.counter())
            .collect::<Vec<_>>(),
        &[chains],
    )?;

    // draws × chains series for μ (index 0), τ (exp of index 1), θ₁.
    let mut mu: Vec<Vec<f64>> = vec![Vec::with_capacity(draws); chains];
    let mut tau: Vec<Vec<f64>> = vec![Vec::with_capacity(draws); chains];
    let mut theta1: Vec<Vec<f64>> = vec![Vec::with_capacity(draws); chains];
    for _ in 0..draws {
        let (q_next, c_next) = nuts.run_pc_with(&q, &eps_t, 1, &counters, None)?;
        q = q_next;
        counters = c_next;
        let v = q.as_f64()?;
        for b in 0..chains {
            let row = &v[b * dim..(b + 1) * dim];
            mu[b].push(row[0]);
            tau[b].push(row[1].exp());
            theta1[b].push(row[0] + row[1].exp() * row[2]);
        }
    }

    // 3. Diagnostics across the batch of chains.
    println!("\n{:>8}  posterior summary", "param");
    for (name, series) in [("mu", &mu), ("tau", &tau), ("theta[1]", &theta1)] {
        let s: ParameterSummary = summarize(series)?;
        println!("{name:>8}  {s}");
    }
    println!(
        "\n(R̂ near 1 and healthy ESS across {chains} lock-step chains — the\n\
         diagnostics workflow the paper's batching makes cheap)"
    );
    Ok(())
}
