//! Batching a control-heavy classical algorithm beyond the paper's MCMC
//! workload: a recursive binomial-coefficient computation C(n, k) whose
//! recursion tree shape depends on *both* inputs, plus Neal's funnel —
//! a target whose NUTS trajectory lengths vary wildly, the regime where
//! batching across control flow pays most.
//!
//! Run with: `cargo run --release --example batch_divergent_workload`

use std::sync::Arc;

use autobatch::accel::{Backend, Trace};
use autobatch::core::Autobatcher;
use autobatch::lang::compile;
use autobatch::models::NealsFunnel;
use autobatch::nuts::{BatchNuts, NutsConfig};
use autobatch::serve::{AdmissionPolicy, NutsServer, Request, ShardPlan, ShardedServer};
use autobatch::tensor::{CounterRng, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: batched recursive binomial coefficients -------------
    let source = "
        // C(n, k) by Pascal's rule — doubly data-dependent recursion.
        fn binom(n: int, k: int) -> (out: int) {
            if k <= 0 {
                out = 1;
            } else if k >= n {
                out = 1;
            } else {
                let left = binom(n - 1, k - 1);
                let right = binom(n - 1, k);
                out = left + right;
            }
        }
    ";
    let ab = Autobatcher::new(compile(source, "binom")?)?;
    let ns = Tensor::from_i64(&[5, 10, 8, 12, 6, 9], &[6])?;
    let ks = Tensor::from_i64(&[2, 3, 8, 6, 0, 4], &[6])?;
    let out = ab.run_pc(&[ns, ks], None)?;
    println!("C(n,k) for divergent (n,k) pairs: {}", out[0]);
    assert_eq!(out[0].as_i64()?, &[10, 120, 1, 924, 1, 126]);

    // ---- Part 2: NUTS on Neal's funnel --------------------------------
    let dim = 10;
    let chains = 16;
    let model = Arc::new(NealsFunnel::new(dim));
    let nuts = BatchNuts::new(
        model,
        NutsConfig {
            step_size: 0.2,
            n_trajectories: 6,
            max_depth: 7,
            leapfrog_steps: 4,
            seed: 31,
        },
    )?;
    let rng = CounterRng::new(64);
    let q0 = rng.normal_batch(&(0..chains as i64).collect::<Vec<_>>(), &[dim]);
    let mut trace = Trace::new(Backend::xla_cpu());
    let samples = nuts.run_pc(&q0, Some(&mut trace))?;
    let necks: Vec<f64> = (0..chains)
        .map(|b| samples.as_f64().map(|v| v[b * dim]).unwrap_or(0.0))
        .collect();
    println!("\nfunnel neck coordinates after sampling: {necks:.2?}");
    println!(
        "gradient utilization on the funnel: {:.3} across {} supersteps",
        trace.utilization("grad"),
        trace.supersteps()
    );
    println!(
        "(the funnel's wildly varying trajectory lengths are exactly where\n\
         cross-trajectory batching earns its keep)"
    );

    // ---- Part 3: serving the funnel with dynamic batch admission ------
    // Chains arrive as requests and join the in-flight batch whenever a
    // lane frees up; per-request RNG seeds make each chain's draws
    // independent of whatever batch it lands in.
    let policy = AdmissionPolicy::JoinAtEntry {
        max_batch: 8,
        min_utilization: 1.0,
    };
    let mut server = NutsServer::new(&nuts, policy)?;
    for i in 0..chains as u64 {
        let q = q0.row(i as usize)?.reshape(&[1, dim])?;
        server.submit(i, &q, i)?;
    }
    let mut serve_trace = Trace::new(Backend::hybrid_cpu());
    let served = server.run_until_idle(Some(&mut serve_trace))?;
    let joined_mid_flight = served.iter().filter(|r| r.admitted_at > 0).count();
    println!(
        "\nserved {} chains with batch capacity 8: {} joined mid-flight, \
         peak batch {}, {} supersteps",
        served.len(),
        joined_mid_flight,
        serve_trace.peak_members(),
        serve_trace.supersteps()
    );
    assert_eq!(served.len(), chains);
    assert!(
        joined_mid_flight > 0,
        "no request joined an in-flight batch"
    );
    // Single-server responses arrive in completion order; index by chain
    // for the comparison below.
    let mut served = served;
    served.sort_by_key(|r| r.id);

    // ---- Part 4: sharding the fleet across worker threads -------------
    // One BatchServer saturates one host thread. The ShardedServer
    // partitions the same chains across workers (least-loaded routing),
    // each worker driving its own PcMachine; the ShardPlan derives the
    // worker count and per-shard width from the backend's cost profile.
    let backend = Backend::hybrid_cpu();
    let plan = ShardPlan::for_backend(&backend, chains, 4);
    let mut fleet = ShardedServer::with_plan(
        nuts.lowered(),
        nuts.registry().clone(),
        nuts.exec_options(),
        &plan,
        backend,
    )?;
    for i in 0..chains as u64 {
        let q = q0.row(i as usize)?;
        fleet.submit(Request {
            id: i,
            inputs: nuts.request_inputs(&q)?,
            seed: i,
        })?;
    }
    let sharded = fleet.run_until_idle()?;
    let agg = fleet.aggregated_trace();
    println!(
        "\nsharded the same {} chains over {} workers (batch {} each): \
         fleet wall-clock {:.1}s vs single-server {:.1}s, {} supersteps total",
        sharded.len(),
        plan.workers,
        plan.shard_batch,
        agg.sim_time(),
        serve_trace.sim_time(),
        agg.supersteps(),
    );
    assert_eq!(sharded.len(), chains);
    // Aggregation preserves submission order across shards.
    assert!(sharded.iter().enumerate().all(|(i, r)| r.id == i as u64));
    // Per-chain results are placement-independent: the sharded fleet
    // reproduces the single server's positions bit for bit.
    for (r, s) in served.iter().zip(&sharded) {
        assert_eq!(
            r.position,
            s.outputs[0].reshape(&[dim])?,
            "sharding perturbed chain {}",
            r.id
        );
    }
    assert!(
        agg.sim_time() < serve_trace.sim_time(),
        "the sharded fleet should beat one worker on wall-clock"
    );
    Ok(())
}
