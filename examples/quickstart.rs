//! Quickstart: write a recursive single-example program in the surface
//! language, mechanically batch it, and run a whole batch of inputs on
//! both autobatching runtimes.
//!
//! Run with: `cargo run --example quickstart`

use autobatch::accel::{Backend, Trace};
use autobatch::core::Autobatcher;
use autobatch::ir::pretty;
use autobatch::lang::compile;
use autobatch::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A single-example program: recursive Fibonacci, exactly the
    //    running example of the paper's Figures 1 and 3.
    let source = "
        fn fibonacci(n: int) -> (out: int) {
            if n <= 1 {
                out = 1;
            } else {
                let left = fibonacci(n - 2);
                let right = fibonacci(n - 1);
                out = left + right;
            }
        }
    ";
    let program = compile(source, "fibonacci")?;
    println!("--- single-example CFG (paper Figure 2 form) ---");
    println!("{}", pretty::lsab_listing(&program));

    // 2. Autobatch it. The Autobatcher validates the program and lowers
    //    it to the merged, stack-explicit program-counter form.
    let ab = Autobatcher::new(program)?;
    println!("--- merged stack-explicit form (paper Figure 4 form) ---");
    println!("{}", pretty::pcab_listing(ab.lowered()));
    println!("lowering stats: {:?}\n", ab.lowering_stats());

    // 3. Run a divergent batch: every member takes different branches
    //    and recursion depths, yet executes in lock-step.
    let inputs = vec![Tensor::from_i64(&[3, 7, 4, 5, 11, 0], &[6])?];

    let local = ab.run_local(&inputs, None)?;
    println!("local static autobatching: {}", local[0]);

    let mut trace = Trace::new(Backend::xla_cpu());
    let pc = ab.run_pc(&inputs, Some(&mut trace))?;
    println!("program counter autobatching: {}", pc[0]);
    assert_eq!(local, pc);

    // 4. The trace shows what a simulated accelerator would have done.
    println!(
        "\npc run: {} supersteps, {} kernel launches, {:.3} ms simulated on {}",
        trace.supersteps(),
        trace.launches(),
        trace.sim_time() * 1e3,
        trace.backend().name,
    );
    Ok(())
}
