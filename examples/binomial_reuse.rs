//! Subroutine reuse without combinatorial explosion (paper §3).
//!
//! The paper contrasts program-counter autobatching with tracing-based
//! systems like `jax.vmap`: "this compiled approach also doesn't amount
//! to inlining all function calls, so can autobatch a program with
//! significant subroutine reuse without combinatorial explosion in code
//! (or traced graph) size."
//!
//! Pascal's recursion `C(n,k) = C(n−1,k−1) + C(n−1,k)` is the extreme
//! case: the recursion tree has `2·C(n,k) − 1` nodes, so a tracer that
//! inlines every call materializes *thousands* of copies of a five-line
//! function — while the compiled program here keeps a constant handful
//! of basic blocks regardless of `n`, and the runtime batches tree nodes
//! across both batch members and recursion depths.
//!
//! Run with: `cargo run --release --example binomial_reuse`

use autobatch::core::Autobatcher;
use autobatch::lang::compile;
use autobatch::tensor::Tensor;

const SOURCE: &str = r#"
fn choose(n: int, k: int) -> (c: int) {
    if k <= 0 {
        c = 1;
    } else {
        if k >= n {
            c = 1;
        } else {
            let n1 = n - 1;
            let k1 = k - 1;
            let a = choose(n1, k1);
            let b = choose(n1, k);
            c = a + b;
        }
    }
}
"#;

fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k.min(n));
    (1..=k).fold(1u64, |acc, i| acc * (n - k + i) / i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SOURCE, "choose")?;
    let ab = Autobatcher::new(program)?;
    let stats = ab.lowering_stats();

    // A batch of binomial queries at very different tree sizes.
    let ns: Vec<i64> = vec![4, 8, 10, 12, 14, 6];
    let ks: Vec<i64> = vec![2, 4, 3, 6, 7, 1];
    let out = ab.run_pc(
        &[Tensor::from_i64(&ns, &[6])?, Tensor::from_i64(&ks, &[6])?],
        None,
    )?;
    let c = out[0].as_i64()?;

    println!(
        "{:>4} {:>3} {:>10} {:>10} {:>16}",
        "n", "k", "C(n,k)", "check", "recursion nodes"
    );
    let mut total_nodes: u64 = 0;
    for i in 0..ns.len() {
        let expect = binomial(ns[i] as u64, ks[i] as u64);
        let nodes = 2 * expect - 1;
        total_nodes += nodes;
        assert_eq!(c[i] as u64, expect, "member {i}");
        println!(
            "{:>4} {:>3} {:>10} {:>10} {:>16}",
            ns[i], ks[i], c[i], expect, nodes
        );
    }
    println!(
        "\ncompiled program: {} basic blocks, {} stacked variables — \
         CONSTANT in n",
        stats.blocks, stats.stacked_vars
    );
    println!(
        "a tracing batcher would inline ~{total_nodes} copies of the \
         function body for this batch;\nprogram-counter autobatching \
         executes the same {} blocks over and over, batching\nlogical \
         threads at different recursion depths as they pass through them.",
        stats.blocks
    );
    Ok(())
}
