//! Regenerates the paper's Figures 1 and 3: runtime snapshots of a
//! batched recursive Fibonacci program under both autobatching
//! strategies.
//!
//! Figure 1 (local static autobatching): per-superstep view of the
//! active set and per-member program counters, with recursion living in
//! host stack frames — members at different host depths can never batch.
//!
//! Figure 3 (program counter autobatching): per-variable stacks with
//! per-member stack pointers and the stacked program counter — members
//! at *different* stack depths batch whenever their pc tops coincide.
//!
//! Run with: `cargo run --example fibonacci_trace`

use autobatch::core::{lower, ExecOptions, KernelRegistry, LocalStaticVm, LoweringOptions, PcVm};
use autobatch::ir::build::fibonacci_program;
use autobatch::ir::Var;
use autobatch::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = fibonacci_program();

    // ---- Figure 1: local static autobatching on the batch {3, 7, 4, 5}.
    println!("=== Figure 1: local static autobatching, inputs [3, 7, 4, 5] ===");
    println!("(each line is one superstep: function/block, host depth, active mask, pcs)\n");
    let vm = LocalStaticVm::new(&program, KernelRegistry::new(), ExecOptions::default());
    let mut step = 0usize;
    let mut shown = 0usize;
    let mut obs = |o: &autobatch::core::LsabObservation<'_>| {
        step += 1;
        // The full trace is long; show the first snapshots and every
        // snapshot where recursion is at least two frames deep.
        if shown < 12 || o.host_depth >= 2 {
            shown += 1;
            if shown <= 28 {
                let mask: String = o
                    .locally_active
                    .iter()
                    .map(|&a| if a { '#' } else { '.' })
                    .collect();
                println!(
                    "step {step:>3}  {}:b{}  depth {}  active [{mask}]  pc {:?}",
                    o.func, o.block, o.host_depth, o.pc
                );
            }
        }
    };
    let input = vec![Tensor::from_i64(&[3, 7, 4, 5], &[4])?];
    let out = vm.run_observed(&input, None, Some(&mut obs))?;
    println!("\nresult: {}  (fib of [3, 7, 4, 5])", out[0]);

    // ---- Figure 3: program counter autobatching on the batch {6, 7, 8, 9}.
    println!("\n=== Figure 3: program counter autobatching, inputs [6, 7, 8, 9] ===");
    println!("(snapshots show the stacked pc and the per-variable stacks of `n`)\n");
    let (lowered, _) = lower(&program, LoweringOptions::default())?;
    let vm = PcVm::new(&lowered, KernelRegistry::new(), ExecOptions::default());
    let n_var = Var::new("fibonacci.n");
    let mut step = 0usize;
    let mut obs = |o: &autobatch::core::PcObservation<'_>| {
        step += 1;
        if !(10..=20).contains(&step) {
            return;
        }
        let mask: String = o
            .active
            .iter()
            .map(|&a| if a { '#' } else { '.' })
            .collect();
        println!(
            "step {step:>3}  block b{}  active [{mask}]  pc-top {:?}  pc-depth {:?}",
            o.block, o.pc_top, o.pc_depth
        );
        if let Some(snap) = o.stacks.get(&n_var) {
            if let Some(top) = &snap.top {
                println!("          n: sp {:?}  top {}", snap.sp, top);
            }
        }
    };
    let input = vec![Tensor::from_i64(&[6, 7, 8, 9], &[4])?];
    let out = vm.run_observed(&input, None, Some(&mut obs))?;
    println!("\nresult: {}  (fib of [6, 7, 8, 9])", out[0]);
    println!(
        "\nNote how pc-depth differs across members within one active set:\n\
         the program-counter runtime batches logical threads at different\n\
         recursion depths — the capability Figure 1's host-stack recursion lacks."
    );
    Ok(())
}
