//! Batching an *adaptive* ODE integrator — one of the control-heavy
//! workloads the paper's introduction motivates ("people have used …
//! ordinary differential equations solvers in machine learning work;
//! what else could we accomplish if it were easier?").
//!
//! The integrator below (midpoint rule with step-doubling error control)
//! is written once, for a single problem, in the autobatch surface
//! language. Its `while` loop runs a *data-dependent* number of
//! iterations: stiff members take hundreds of small steps, easy members
//! a handful of large ones. `vmap` batches it mechanically — no
//! hand-masking — and every member still gets exactly the single-example
//! answer.
//!
//! Run with: `cargo run --release --example adaptive_ode`

use autobatch::core::vmap;
use autobatch::lang::compile;
use autobatch::tensor::Tensor;

/// dy/dt = −k·y + sin t, y(0) = 1, integrated to t = 6 with adaptive
/// step-doubling: accept when |one full step − two half steps| < tol.
const SOURCE: &str = r#"
fn integrate(k: float, tol: float) -> (y: float, steps: int) {
    y = 1.0;
    let t = 0.0;
    let h = 0.5;
    let tend = 6.0;
    steps = 0;
    while t < tend {
        let hc = min(h, tend - t);
        // One full midpoint step.
        let f1 = sin(t) - k * y;
        let ymid = y + 0.5 * hc * f1;
        let fmid = sin(t + 0.5 * hc) - k * ymid;
        let yfull = y + hc * fmid;
        // Two half midpoint steps.
        let hh = 0.5 * hc;
        let ym1 = y + 0.5 * hh * f1;
        let fm1 = sin(t + 0.5 * hh) - k * ym1;
        let yhalf = y + hh * fm1;
        let f2 = sin(t + hh) - k * yhalf;
        let ym2 = yhalf + 0.5 * hh * f2;
        let fm2 = sin(t + 1.5 * hh) - k * ym2;
        let ytwo = yhalf + hh * fm2;
        let err = abs(yfull - ytwo);
        if err < tol {
            y = ytwo;
            t = t + hc;
            steps = steps + 1;
            h = hc * 1.5;
        } else {
            h = 0.5 * hc;
        }
    }
}
"#;

fn analytic(k: f64, t: f64) -> f64 {
    // y(t) = C·e^{−kt} + (k·sin t − cos t)/(1 + k²), C chosen for y(0)=1.
    let p = |t: f64| (k * t.sin() - t.cos()) / (1.0 + k * k);
    (1.0 - p(0.0)) * (-k * t).exp() + p(t)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SOURCE, "integrate")?;
    let f = vmap(program)?;

    // A batch mixing decay rates and tolerances: trip counts will differ
    // by an order of magnitude across members.
    let ks = [0.1, 0.5, 1.0, 4.0, 10.0, 25.0, 0.2, 8.0];
    let tols = [1e-3, 1e-5, 1e-4, 1e-6, 1e-4, 1e-5, 1e-7, 1e-6];
    let out = f.call(
        &[Tensor::from_f64(&ks, &[8])?, Tensor::from_f64(&tols, &[8])?],
        None,
    )?;
    let y = out[0].as_f64()?;
    let steps = out[1].as_i64()?;

    println!(
        "{:>6} {:>9} {:>7} {:>12} {:>12} {:>10}",
        "k", "tol", "steps", "y(6)", "analytic", "|error|"
    );
    for i in 0..ks.len() {
        let exact = analytic(ks[i], 6.0);
        let err = (y[i] - exact).abs();
        println!(
            "{:>6} {:>9.0e} {:>7} {:>12.6} {:>12.6} {:>10.2e}",
            ks[i], tols[i], steps[i], y[i], exact, err
        );
        assert!(err < 200.0 * tols[i].max(1e-6), "member {i} inaccurate");
    }
    let (min_s, max_s) = (
        steps.iter().min().expect("nonempty"),
        steps.iter().max().expect("nonempty"),
    );
    println!(
        "\naccepted steps range from {min_s} to {max_s} across the batch — \
         fully divergent control flow,\nbatched mechanically by the same \
         transformation that batches NUTS."
    );
    Ok(())
}
