//! Batched NUTS on the paper's correlated-Gaussian target (§4.2):
//! run many chains in lock-step, then compare the gradient-lane
//! utilization of trajectory-boundary synchronization (local static)
//! against gradient-step synchronization (program counter) — a
//! small-scale Figure 6.
//!
//! Run with: `cargo run --release --example nuts_gaussian`

use std::sync::Arc;

use autobatch::accel::{Backend, Trace};
use autobatch::models::{CorrelatedGaussian, Model};
use autobatch::nuts::{BatchNuts, NutsConfig};
use autobatch::tensor::CounterRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 32;
    let chains = 24;
    let model = Arc::new(CorrelatedGaussian::new(dim, 0.9));
    let cfg = NutsConfig {
        step_size: 0.12,
        n_trajectories: 8,
        max_depth: 7,
        leapfrog_steps: 4,
        seed: 2024,
    };
    println!(
        "target: {} (dim {dim}, rho 0.9), {chains} chains × {} trajectories",
        model.name(),
        cfg.n_trajectories
    );
    let nuts = BatchNuts::new(model.clone(), cfg)?;
    println!("compiled: {:?}", nuts.lowering_stats());

    let rng = CounterRng::new(5);
    let q0 = rng.normal_batch(&(0..chains as i64).collect::<Vec<_>>(), &[dim]);

    // Local static autobatching: chains sync on trajectory/tree bounds.
    let mut tr_local = Trace::new(Backend::eager_cpu());
    let out_local = nuts.run_local(&q0, Some(&mut tr_local))?;

    // Program counter autobatching: chains sync on gradient steps.
    let mut tr_pc = Trace::new(Backend::xla_cpu());
    let out_pc = nuts.run_pc(&q0, Some(&mut tr_pc))?;
    assert_eq!(out_local, out_pc, "both runtimes agree exactly");

    let useful = tr_pc.useful_count("grad");
    println!("\nuseful gradient evaluations across all chains: {useful}");
    println!(
        "gradient-lane utilization: local-static {:.3} vs program-counter {:.3}",
        tr_local.utilization("grad"),
        tr_pc.utilization("grad"),
    );
    println!(
        "(program-counter autobatching recovers utilization by batching the\n\
         i-th gradient of one chain's trajectory with the j-th of another's)"
    );

    // Posterior sanity: the marginal variance of coordinate 0 under the
    // AR(1) covariance is 1.
    let v = out_pc.as_f64()?;
    let first: Vec<f64> = (0..chains).map(|b| v[b * dim]).collect();
    let mean = first.iter().sum::<f64>() / chains as f64;
    let var = first.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / chains as f64;
    println!("\ncoordinate-0 sample mean {mean:.3}, variance {var:.3} (target: 0, 1)");
    Ok(())
}
