//! Offline, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`], and [`Rng::gen_range`].
//!
//! The generator is a fixed xoshiro256**-style PRNG, so a given seed
//! produces the same stream on every platform and every run — exactly
//! the reproducibility the test suite wants. It is *not* the upstream
//! `StdRng` stream; code here must not assume value-compatibility with
//! crates.io `rand`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Sample uniformly from `range` (a half-open or inclusive range).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The raw entropy source underlying [`Rng`].
pub trait RngCore {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produce a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 significant bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled to produce a `T` (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // initialization recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
