//! Offline, dependency-free stand-in for the parts of `criterion` this
//! workspace uses: `Criterion`, `BenchmarkId`, benchmark groups,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! It is a real (if simple) harness: each benchmark is warmed up, timed
//! over `sample_size` samples, and its median per-iteration wall-clock
//! time is printed. There are no plots, no statistics beyond the median,
//! and no baseline comparisons — enough for `cargo bench` to produce
//! meaningful numbers without the crates.io dependency tree.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value
/// (re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A benchmark id `{function_name}/{parameter}`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the most recent `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, recording the median over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call keeps cold-start effects (lazy allocation,
        // first-touch faults) out of the measurement.
        std_black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std_black_box(routine());
                start.elapsed()
            })
            .collect();
        times.sort();
        self.last_median = Some(times[times.len() / 2]);
    }
}

/// A set of related benchmarks reported under a common prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.samples = n;
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            last_median: None,
        };
        f(&mut b);
        match b.last_median {
            Some(t) => println!(
                "{}/{}: median {:?} ({} samples)",
                self.name, id, t, self.samples
            ),
            None => println!("{}/{}: no measurement (b.iter never called)", self.name, id),
        }
    }

    /// Benchmark `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        let text = id.text.clone();
        self.run_one(&text, |b| routine(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        routine: R,
    ) -> &mut Self {
        let text = id.into();
        self.run_one(&text, routine);
        self
    }

    /// Finish the group (upstream criterion emits summary artifacts
    /// here; this harness prints as it goes).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function("bench", routine);
        group.finish();
        self
    }
}

/// Bundle benchmark functions into one runner, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, like
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
