//! The deterministic case runner: configuration and per-case RNG
//! (subset of `proptest::test_runner`).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Default number of cases per property when neither the test source nor
/// the `PROPTEST_CASES` environment variable says otherwise.
pub const DEFAULT_CASES: u32 = 64;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
///
/// Precedence matches upstream proptest: `PROPTEST_CASES` changes the
/// *default* case count, but a source-level
/// [`ProptestConfig::with_cases`] always wins — a suite that pins its
/// budget explicitly runs that many cases regardless of environment.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES is not a number: {v:?}")),
            Err(_) => DEFAULT_CASES,
        };
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Configuration running exactly `cases` cases per property
    /// (explicit source config; not overridden by `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count to run.
    pub fn resolved_cases(&self) -> u32 {
        self.cases
    }
}

/// The base seed: `PROPTEST_SEED` if set, else 0. Every case RNG is
/// derived from this, the test's module path, and the case index.
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED is not a number: {v:?}")),
        Err(_) => 0,
    }
}

/// The RNG handed to strategies, pinned to one `(seed, test, case)`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Derive the RNG for one case of one test.
    pub fn for_case(base_seed: u64, test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps distinct tests on distinct
        // streams even with the same base seed and case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let seed = base_seed
            .wrapping_add(h)
            .wrapping_add((case as u64).wrapping_mul(0x9e3779b97f4a7c15));
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.inner.next_f64() * (hi - lo)
    }

    /// Uniform sample from a range, delegating to the vendored `rand`
    /// (the single implementation of integer range sampling).
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        rand::Rng::gen_range(&mut self.inner, range)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;
    use crate::strategy::{any, Strategy};

    #[test]
    fn cases_env_override_wins() {
        // Can't set the env var here without racing other tests; just
        // exercise the non-env path.
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
        assert_eq!(ProptestConfig::default().cases, DEFAULT_CASES);
    }

    #[test]
    fn same_inputs_same_stream() {
        let mut a = TestRng::for_case(0, "x::y", 3);
        let mut b = TestRng::for_case(0, "x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(0, "x::z", 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::for_case(1, "sizes", 0);
        for _ in 0..50 {
            let v = collection::vec(-2.0f64..2.0, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
            let w = collection::vec(any::<bool>(), 3..=3).generate(&mut rng);
            assert_eq!(w.len(), 3);
            let u = collection::vec(0usize..5, 6).generate(&mut rng);
            assert_eq!(u.len(), 6);
        }
    }
}
