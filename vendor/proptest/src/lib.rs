//! Offline, dependency-free stand-in for the parts of `proptest` this
//! workspace uses: the [`proptest!`] macro, the [`Strategy`](strategy::Strategy)
//! trait over ranges / [`any`](strategy::any) / [`collection::vec`],
//! [`ProptestConfig`](test_runner::ProptestConfig), and the
//! `prop_assert*` macros.
//!
//! # Determinism
//!
//! Unlike upstream proptest (which seeds from OS entropy unless given a
//! failure-persistence file), this stand-in is deterministic by
//! construction: every case's RNG is derived from
//! `(PROPTEST_SEED, test name, case index)`, so a failure reproduces on
//! every machine and every run. Two environment knobs keep CI flexible:
//!
//! - `PROPTEST_CASES` — changes the *default* per-test case count;
//!   as in upstream proptest, an explicit `ProptestConfig::with_cases`
//!   in the test source still wins;
//! - `PROPTEST_SEED` — changes the base seed (default `0`) to explore a
//!   different slice of the input space.
//!
//! Shrinking is not implemented; failures report the case index and the
//! seed needed to replay them.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: an exact length or a length
    /// range (subset of `proptest::collection::SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "vec size range is empty");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a strategy for vectors whose elements are drawn from
    /// `element` and whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; on failure the harness reports
/// the failing case and replay seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item expands to a normal `#[test]` that runs the body over
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let base_seed = $crate::test_runner::base_seed();
                for case in 0..cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        base_seed,
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {case}/{cases} \
                             (replay with PROPTEST_SEED={base_seed})",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
