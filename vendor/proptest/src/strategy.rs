//! Value-generation strategies (subset of `proptest::strategy` plus the
//! range/`any` impls from `proptest::arbitrary` and `proptest::num`).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value using the given deterministic RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for all values of `T` — obtain via [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats spanning a wide dynamic range; proptest's `any`
        // includes NaN/inf, but no caller here wants them.
        let mag = rng.uniform_f64(-300.0, 300.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

// Range sampling delegates to the vendored `rand`, the one place the
// integer span arithmetic lives.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(*self.start(), *self.end())
    }
}
