//! # autobatch
//!
//! A Rust reproduction of *"Automatically Batching Control-Intensive
//! Programs for Modern Accelerators"* (Radul, Patton, Maclaurin,
//! Hoffman, Saurous; MLSys 2020, [arXiv:1910.11141](https://arxiv.org/abs/1910.11141)).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`tensor`] — batched N-d arrays, masking/gather/scatter kernels,
//!   counter-based RNG;
//! - [`accel`] — simulated accelerator backends and kernel-launch
//!   pricing;
//! - [`ir`] — the locally-batchable (Figure 2) and program-counter
//!   batchable (Figure 4) intermediate representations;
//! - [`lang`] — the surface language frontend (the AutoGraph stand-in);
//! - [`core`] — the paper's contribution: both autobatching runtimes and
//!   the stack-discipline lowering between them;
//! - [`autodiff`] — a reverse-mode tape for deriving model gradients;
//! - [`models`] — the evaluation's target log-densities;
//! - [`nuts`] — the No-U-Turn Sampler, recursive and batched;
//! - [`diagnostics`] — cross-chain convergence diagnostics (`R̂`, ESS),
//!   the practice the paper's batching is meant to enable;
//! - [`chaos`] — deterministic, seed-replayable fault injection for
//!   chaos-testing the serving stack;
//! - [`serve`] — dynamic batch admission: a request server that merges
//!   incoming work into an in-flight batched execution, plus the
//!   self-healing [`serve::Supervisor`];
//! - [`ingress`] — a dependency-free TCP front door: length-prefixed
//!   wire frames, deadline-driven batch collection, and load shedding
//!   over the sharded server.
//!
//! # Quickstart
//!
//! ```
//! use autobatch::core::Autobatcher;
//! use autobatch::ir::build::fibonacci_program;
//! use autobatch::tensor::Tensor;
//!
//! let ab = Autobatcher::new(fibonacci_program())?;
//! let batch = vec![Tensor::from_i64(&[3, 7, 4, 5], &[4])?];
//! let out = ab.run_pc(&batch, None)?;
//! assert_eq!(out[0].as_i64()?, &[3, 21, 5, 8]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use autobatch_accel as accel;
pub use autobatch_autodiff as autodiff;
pub use autobatch_chaos as chaos;
pub use autobatch_core as core;
pub use autobatch_diagnostics as diagnostics;
pub use autobatch_ingress as ingress;
pub use autobatch_ir as ir;
pub use autobatch_lang as lang;
pub use autobatch_models as models;
pub use autobatch_nuts as nuts;
pub use autobatch_serve as serve;
pub use autobatch_tensor as tensor;
